"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``problems``                    list the benchmark problems
- ``solve <problem_id>``          run MAGE on one problem
- ``eval <system> <suite>``       evaluate a registered system
- ``lint <file.v>``               lint a Verilog file
- ``tb <file.v> <bench.tb>``      run a testbench against a design
"""

from __future__ import annotations

import argparse
import sys


def _cmd_problems(_args) -> int:
    from repro.evalsets import all_problems

    print(f"{'id':22s} {'category':14s} {'diff':>5s} title")
    print("-" * 72)
    for problem in all_problems():
        print(
            f"{problem.id:22s} {problem.category:14s} "
            f"{problem.difficulty:5.2f} {problem.title}"
        )
    return 0


def _cmd_solve(args) -> int:
    from repro import MAGE, DesignTask, MAGEConfig
    from repro.evalsets import get_problem, golden_testbench
    from repro.tb.runner import run_testbench

    problem = get_problem(args.problem)
    config = (
        MAGEConfig.low_temperature()
        if args.low_temperature
        else MAGEConfig.high_temperature()
    )
    result = MAGE(config).solve(DesignTask.from_problem(problem), seed=args.seed)
    print(result.transcript.render())
    print()
    print(result.source)
    golden = run_testbench(result.source, golden_testbench(problem), problem.top)
    print(f"golden testbench: {'PASS' if golden.passed else 'FAIL'}")
    return 0 if golden.passed else 1


def _cmd_eval(args) -> int:
    from repro.baselines.registry import SYSTEMS, system_names
    from repro.evaluation.harness import evaluate_system

    if args.system not in SYSTEMS:
        print(f"unknown system; choose from: {', '.join(system_names())}")
        return 2
    spec = SYSTEMS[args.system]
    result = evaluate_system(
        spec.factory,
        args.suite,
        runs=args.runs,
        progress=(lambda line: print("  " + line)) if args.verbose else None,
    )
    print(result.render_row())
    if result.failures():
        print("failures:", ", ".join(result.failures()))
    return 0


def _cmd_lint(args) -> int:
    from repro.hdl.lint import lint

    with open(args.file) as handle:
        report = lint(handle.read())
    print(report.render())
    return 0 if report.ok else 1


def _cmd_tb(args) -> int:
    from repro.tb.runner import run_testbench
    from repro.tb.stimulus import parse_testbench
    from repro.tb.textlog import render_textlog

    with open(args.design) as handle:
        source = handle.read()
    with open(args.testbench) as handle:
        tb = parse_testbench(handle.read())
    report = run_testbench(source, tb)
    print(render_textlog(report))
    print(
        f"\nscore {report.score:.3f} "
        f"({report.mismatches}/{report.total_checks} mismatches)"
    )
    if args.vcd:
        from repro.hdl.vcd import VcdRecorder

        recorder = VcdRecorder.for_runner()
        run_testbench(source, tb, on_step=recorder.on_step)
        recorder.write(args.vcd)
        print(f"waveform written to {args.vcd}")
    return 0 if report.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MAGE reproduction: multi-agent RTL generation toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("problems", help="list benchmark problems").set_defaults(
        fn=_cmd_problems
    )

    solve = sub.add_parser("solve", help="run MAGE on one problem")
    solve.add_argument("problem")
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--low-temperature", action="store_true")
    solve.set_defaults(fn=_cmd_solve)

    evaluate = sub.add_parser("eval", help="evaluate a system on a suite")
    evaluate.add_argument("system")
    evaluate.add_argument("suite", nargs="?", default="verilogeval-v2")
    evaluate.add_argument("--runs", type=int, default=1)
    evaluate.add_argument("--verbose", action="store_true")
    evaluate.set_defaults(fn=_cmd_eval)

    lint_cmd = sub.add_parser("lint", help="lint a Verilog file")
    lint_cmd.add_argument("file")
    lint_cmd.set_defaults(fn=_cmd_lint)

    tb = sub.add_parser("tb", help="run a testbench against a design")
    tb.add_argument("design")
    tb.add_argument("testbench")
    tb.add_argument("--vcd", help="also dump a VCD waveform")
    tb.set_defaults(fn=_cmd_tb)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
