"""Verilog-state checkpoints (the paper's Sec. III-C mechanism).

A state checkpoint is the tuple (inputs, DUT outputs, expected outputs)
at one checked clock edge.  Debugging feedback is built from:

- the earliest mismatch time ``t_m = min{t : O_dut(t) != O_exp(t)}``
  (Eq. 5), and
- a sliding textual-waveform window
  ``W = {(I(t'), O_dut(t'), O_exp(t')) : t' in [max(t_m - L_W, 0), t_m]}``
  (Eq. 6),

rendered as text the debug agent can reason over.  The contrast between
:func:`render_checkpoint_feedback` (precise, localised) and
:func:`render_logonly_feedback` (aggregate pass counts only, as produced
by conventional golden testbenches) is exactly the ablation of Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdl.values import LogicVec
from repro.tb.runner import TestReport
from repro.tb.textlog import render_textlog

DEFAULT_WINDOW = 8  # L_W, in clock edges


@dataclass(frozen=True)
class StateCheckpoint:
    """State at one checked clock edge."""

    step: int
    time: int
    inputs: dict[str, int]
    dut_outputs: dict[str, LogicVec]
    expected_outputs: dict[str, LogicVec]
    ok: bool

    def mismatching_signals(self) -> list[str]:
        out = []
        for name, expected in self.expected_outputs.items():
            actual = self.dut_outputs.get(name)
            if actual is None:
                continue
            width = max(actual.width, expected.width)
            a, e = actual.resize(width), expected.resize(width)
            care = ~e.xmask & ((1 << width) - 1)
            if (a.val & care) != (e.val & care) or (a.xmask & care):
                out.append(name)
        return out


def checkpoints_from_report(report: TestReport) -> list[StateCheckpoint]:
    """Group per-signal check records into per-edge checkpoints."""
    grouped: dict[int, list] = {}
    for record in report.records:
        grouped.setdefault(record.step, []).append(record)
    checkpoints = []
    for step in sorted(grouped):
        records = grouped[step]
        checkpoints.append(
            StateCheckpoint(
                step=step,
                time=records[0].time,
                inputs=dict(records[0].inputs),
                dut_outputs={r.signal: r.actual for r in records},
                expected_outputs={r.signal: r.expected for r in records},
                ok=all(r.ok for r in records),
            )
        )
    return checkpoints


def earliest_mismatch(report: TestReport) -> StateCheckpoint | None:
    """The checkpoint at t_m (Eq. 5), or None if everything matched."""
    for checkpoint in checkpoints_from_report(report):
        if not checkpoint.ok:
            return checkpoint
    return None


def mismatch_window(
    report: TestReport, window: int = DEFAULT_WINDOW
) -> list[StateCheckpoint]:
    """Sliding window W of checkpoints ending at the first mismatch (Eq. 6)."""
    checkpoints = checkpoints_from_report(report)
    for index, checkpoint in enumerate(checkpoints):
        if not checkpoint.ok:
            start = max(index - window, 0)
            return checkpoints[start : index + 1]
    return []


def render_checkpoint_feedback(
    report: TestReport, window: int = DEFAULT_WINDOW
) -> str:
    """Debug feedback *with* state checkpoints (Fig. 3 right-hand side).

    Contains the windowed waveform text log, the first mismatch time,
    the input vector at that edge, and got/expected values per
    mismatching output -- precise material for a targeted fix.
    """
    if report.error is not None:
        return f"SIMULATION ERROR: {report.error}"
    if report.passed:
        return "All state checkpoints passed."
    win = mismatch_window(report, window)
    first = win[-1]
    steps = {cp.step for cp in win}
    lines = [
        "State checkpoint log (sliding window ending at first mismatch):",
        render_textlog(report, only_steps=steps),
        "",
        f"First mismatch at time {first.time}:",
        "Inputs: "
        + ", ".join(f"{k}={v}" for k, v in sorted(first.inputs.items())),
    ]
    for signal in first.mismatching_signals():
        got = first.dut_outputs[signal].format_display()
        exp = first.expected_outputs[signal].format_display()
        got_bits = first.dut_outputs[signal].to_bits()
        exp_bits = first.expected_outputs[signal].to_bits()
        lines.append(
            f"Got {signal}={got_bits} ({got}), expected {signal}={exp_bits} ({exp})."
        )
    lines.append(
        f"Total: {report.mismatches} mismatch(es) over {report.total_checks} checks."
    )
    return "\n".join(lines)


def render_logonly_feedback(report: TestReport) -> str:
    """Debug feedback *without* checkpoints (Fig. 3 left-hand side).

    Mimics a conventional golden testbench: aggregate mismatch counts
    per output and the first failure time -- no waveform window, no
    input vectors, no expected-value detail.
    """
    if report.error is not None:
        return f"SIMULATION ERROR: {report.error}"
    if report.passed:
        return "All tests passed."
    lines = []
    first = report.first_mismatch
    for signal, count in sorted(report.mismatch_signals().items()):
        lines.append(f"Output '{signal}' has {count} mismatches.")
    if first is not None:
        lines.append(f"First mismatch occurred at time {first.time}.")
    return "\n".join(lines)
