"""Waveform diffing: compare two candidates edge by edge.

Useful when triaging why a debug trial regressed, or what behavioural
difference separates two Step-4 candidates: runs both designs on the
same testbench and reports the steps/signals where they diverge, in the
same textual style as the WF-TextLog.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hdl.values import LogicVec
from repro.tb.runner import run_testbench
from repro.tb.stimulus import Testbench


@dataclass(frozen=True)
class Divergence:
    """One point where the two designs disagree."""

    step: int
    time: int
    signal: str
    left: LogicVec
    right: LogicVec
    inputs: dict[str, int]


@dataclass
class WaveDiff:
    """All divergences between two designs on one testbench."""

    divergences: list[Divergence] = field(default_factory=list)
    left_error: str | None = None
    right_error: str | None = None
    steps_compared: int = 0

    @property
    def identical(self) -> bool:
        return (
            not self.divergences
            and self.left_error is None
            and self.right_error is None
        )

    @property
    def first(self) -> Divergence | None:
        return self.divergences[0] if self.divergences else None

    def render(self, limit: int = 10) -> str:
        if self.left_error or self.right_error:
            return (
                f"cannot diff: left error={self.left_error!r}, "
                f"right error={self.right_error!r}"
            )
        if not self.divergences:
            return f"identical over {self.steps_compared} checked steps"
        lines = [
            f"{len(self.divergences)} divergence(s) over "
            f"{self.steps_compared} checked steps:"
        ]
        for div in self.divergences[:limit]:
            inputs = ", ".join(f"{k}={v}" for k, v in sorted(div.inputs.items()))
            lines.append(
                f"  t={div.time} {div.signal}: "
                f"left={div.left.format_display()} "
                f"right={div.right.format_display()}  (inputs: {inputs})"
            )
        if len(self.divergences) > limit:
            lines.append(f"  ... {len(self.divergences) - limit} more")
        return "\n".join(lines)


def diff_waveforms(
    left_source: str,
    right_source: str,
    testbench: Testbench,
    top: str | None = None,
) -> WaveDiff:
    """Run both designs on ``testbench`` and collect output divergences."""
    left = run_testbench(left_source, testbench, top)
    right = run_testbench(right_source, testbench, top)
    diff = WaveDiff(left_error=left.error, right_error=right.error)
    if diff.left_error or diff.right_error:
        return diff
    right_by_key = {(r.step, r.signal): r for r in right.records}
    seen_steps = set()
    for record in left.records:
        seen_steps.add(record.step)
        other = right_by_key.get((record.step, record.signal))
        if other is None:
            continue
        if record.actual != other.actual:
            diff.divergences.append(
                Divergence(
                    step=record.step,
                    time=record.time,
                    signal=record.signal,
                    left=record.actual,
                    right=other.actual,
                    inputs=record.inputs,
                )
            )
    diff.steps_compared = len(seen_steps)
    return diff
