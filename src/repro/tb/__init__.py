"""Testbench substrate: stimulus programs, simulation runner, textual
waveform logs (WF-TextLog), and Verilog-state checkpoints.

This package provides the feedback machinery MAGE's agents consume:

- :mod:`repro.tb.stimulus` -- the testbench representation and the
  line-oriented text format the testbench agent emits;
- :mod:`repro.tb.runner` -- drives a DUT through a testbench and
  produces a :class:`~repro.tb.runner.TestReport` with per-check
  records (mismatch count m(r) and total checks tc(r));
- :mod:`repro.tb.textlog` -- waveform-as-text rendering (the paper's
  "log resembling a simulated waveform in text form");
- :mod:`repro.tb.checkpoint` -- earliest-mismatch extraction (Eq. 5)
  and sliding-window state checkpoints (Eq. 6).
"""

from repro.tb.checkpoint import (
    StateCheckpoint,
    checkpoints_from_report,
    earliest_mismatch,
    mismatch_window,
    render_checkpoint_feedback,
    render_logonly_feedback,
)
from repro.tb.runner import CheckRecord, TestReport, run_testbench
from repro.tb.stimulus import TbStep, Testbench, parse_testbench, render_testbench
from repro.tb.textlog import render_textlog

__all__ = [
    "CheckRecord",
    "StateCheckpoint",
    "TbStep",
    "TestReport",
    "Testbench",
    "checkpoints_from_report",
    "earliest_mismatch",
    "mismatch_window",
    "parse_testbench",
    "render_checkpoint_feedback",
    "render_logonly_feedback",
    "render_testbench",
    "render_textlog",
    "run_testbench",
]
