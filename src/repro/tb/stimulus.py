"""Testbench representation and its textual exchange format.

A :class:`Testbench` is what MAGE's testbench agent produces: a stimulus
program plus per-step expected outputs, rendered in a line-oriented text
format an LLM can emit and a parser can load back.  Expected values may
contain ``x`` bits, which act as per-bit don't-cares (like ``casez``).

Text format (one directive per line, ``#`` comments)::

    TESTBENCH clocked clock=clk
    INPUTS rst_n en
    OUTPUTS q carry
    STEP rst_n=0 en=0 ; EXPECT q=0 carry=0
    STEP rst_n=1 en=1 ; EXPECT q=1
    STEP ; EXPECT q=2 carry=x

Inputs are sparse: a step only lists inputs that change; the rest hold.
For clocked testbenches each STEP is one full clock cycle (inputs are
applied while the clock is low, expectations are checked after the
rising edge).  For combinational testbenches each STEP applies inputs,
settles, and checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hdl.values import LogicVec


class TestbenchFormatError(ValueError):
    """Raised when testbench text cannot be parsed."""


@dataclass(frozen=True)
class TbStep:
    """One stimulus/check step.

    ``inputs`` maps input names to integer drive values; ``checks`` maps
    output names to expected :class:`LogicVec` patterns (x = don't care).
    An empty ``checks`` dict means the step drives but does not check.
    """

    inputs: dict[str, int] = field(default_factory=dict)
    checks: dict[str, LogicVec] = field(default_factory=dict)


@dataclass(frozen=True)
class Testbench:
    """A complete testbench program."""

    kind: str  # "clocked" | "comb"
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    steps: tuple[TbStep, ...]
    clock: str | None = None
    name: str = "tb"

    def __post_init__(self) -> None:
        if self.kind not in ("clocked", "comb"):
            raise ValueError(f"bad testbench kind {self.kind!r}")
        if self.kind == "clocked" and not self.clock:
            raise ValueError("clocked testbench needs a clock input name")

    @property
    def total_checks(self) -> int:
        """Number of (step, output) comparisons this testbench performs."""
        return sum(len(step.checks) for step in self.steps)

    def with_steps(self, steps: tuple[TbStep, ...]) -> "Testbench":
        return Testbench(
            kind=self.kind,
            inputs=self.inputs,
            outputs=self.outputs,
            steps=steps,
            clock=self.clock,
            name=self.name,
        )


def _parse_value(text: str) -> int:
    if text.startswith(("0x", "0X")):
        return int(text, 16)
    if text.startswith(("0b", "0B")):
        return int(text, 2)
    return int(text, 10)


def _parse_expected(text: str) -> LogicVec | None:
    """Parse an EXPECT value: int literal or binary pattern with x bits.

    Returns None for a bare ``x`` (whole signal don't-care, equivalent to
    omitting the check, but kept so rendered testbenches stay explicit).
    """
    if text.lower() == "x":
        return None
    if any(c in "xX" for c in text):
        body = text[2:] if text.startswith(("0b", "0B")) else text
        return LogicVec.from_bits(body)
    value = _parse_value(text)
    width = max(value.bit_length(), 1)
    return LogicVec.from_int(value, width)


def parse_testbench(text: str, name: str = "tb") -> Testbench:
    """Parse the textual format back into a :class:`Testbench`."""
    kind: str | None = None
    clock: str | None = None
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    steps: list[TbStep] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        word, _, rest = line.partition(" ")
        word = word.upper()
        if word == "TESTBENCH":
            fields = rest.split()
            if not fields:
                raise TestbenchFormatError("TESTBENCH line needs a kind")
            kind = fields[0]
            for extra in fields[1:]:
                key, _, value = extra.partition("=")
                if key == "clock":
                    clock = value
        elif word == "INPUTS":
            inputs = tuple(rest.split())
        elif word == "OUTPUTS":
            outputs = tuple(rest.split())
        elif word == "STEP":
            drive_part, _, expect_part = rest.partition(";")
            step_inputs: dict[str, int] = {}
            for token in drive_part.split():
                key, eq, value = token.partition("=")
                if not eq:
                    raise TestbenchFormatError(f"bad drive token {token!r}")
                step_inputs[key] = _parse_value(value)
            checks: dict[str, LogicVec] = {}
            expect_part = expect_part.strip()
            if expect_part:
                head, _, body = expect_part.partition(" ")
                if head.upper() != "EXPECT":
                    raise TestbenchFormatError(
                        f"expected 'EXPECT', found {head!r}"
                    )
                for token in body.split():
                    key, eq, value = token.partition("=")
                    if not eq:
                        raise TestbenchFormatError(f"bad expect token {token!r}")
                    pattern = _parse_expected(value)
                    if pattern is not None:
                        checks[key] = pattern
            steps.append(TbStep(inputs=step_inputs, checks=checks))
        else:
            raise TestbenchFormatError(f"unknown directive {word!r}")
    if kind is None:
        raise TestbenchFormatError("missing TESTBENCH line")
    return Testbench(
        kind=kind,
        inputs=inputs,
        outputs=outputs,
        steps=tuple(steps),
        clock=clock,
        name=name,
    )


def _render_expected(value: LogicVec) -> str:
    if value.has_x:
        return value.to_bits()
    return str(value.to_uint())


def render_testbench(tb: Testbench) -> str:
    """Render a testbench in the textual exchange format.

    The rendering is memoized on the (immutable) instance: the runtime's
    simulation cache renders the same testbench once per scored
    candidate to compute content keys.
    """
    memo = getattr(tb, "_rendered", None)
    if memo is not None:
        return memo
    lines = []
    header = f"TESTBENCH {tb.kind}"
    if tb.clock:
        header += f" clock={tb.clock}"
    lines.append(header)
    lines.append("INPUTS " + " ".join(tb.inputs))
    lines.append("OUTPUTS " + " ".join(tb.outputs))
    for step in tb.steps:
        drives = " ".join(f"{k}={v}" for k, v in step.inputs.items())
        line = f"STEP {drives}".rstrip()
        if step.checks:
            expects = " ".join(
                f"{k}={_render_expected(v)}" for k, v in step.checks.items()
            )
            line += f" ; EXPECT {expects}"
        lines.append(line)
    text = "\n".join(lines) + "\n"
    object.__setattr__(tb, "_rendered", text)  # frozen-dataclass memo slot
    return text
