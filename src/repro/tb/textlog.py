"""WF-TextLog: waveform-as-text rendering.

The paper replaces graphical waveform viewers with "a log resembling a
simulated waveform in text form, which can be directly adaptable by
LLMs" (Sec. II-C).  :func:`render_textlog` produces that artifact: a
fixed-width table with one row per checked clock edge, showing input
values, DUT outputs, expected outputs, and a pass/fail marker.
"""

from __future__ import annotations

from repro.tb.runner import CheckRecord, TestReport


def _group_by_step(records: list[CheckRecord]) -> dict[int, list[CheckRecord]]:
    grouped: dict[int, list[CheckRecord]] = {}
    for record in records:
        grouped.setdefault(record.step, []).append(record)
    return grouped


def render_textlog(
    report: TestReport,
    max_rows: int | None = None,
    only_steps: set[int] | None = None,
) -> str:
    """Render the full simulation log as a waveform-style text table.

    ``only_steps`` restricts output to the given step indices (used by
    the checkpoint window renderer); ``max_rows`` truncates long logs
    the way a prompt budget would.
    """
    if report.error is not None:
        return f"SIMULATION ERROR: {report.error}"
    grouped = _group_by_step(report.records)
    if not grouped:
        return "no checks were performed"

    input_names = sorted({k for r in report.records for k in r.inputs})
    output_names = list(
        dict.fromkeys(r.signal for r in report.records)
    )  # stable order

    header = ["time"]
    header.extend(input_names)
    header.extend(f"{name}(dut)" for name in output_names)
    header.extend(f"{name}(exp)" for name in output_names)
    header.append("status")

    rows = [header]
    for step in sorted(grouped):
        if only_steps is not None and step not in only_steps:
            continue
        records = grouped[step]
        by_signal = {r.signal: r for r in records}
        inputs = records[0].inputs
        row = [str(records[0].time)]
        row.extend(str(inputs.get(name, "-")) for name in input_names)
        for name in output_names:
            rec = by_signal.get(name)
            row.append(rec.actual.format_display() if rec else "-")
        for name in output_names:
            rec = by_signal.get(name)
            row.append(rec.expected.format_display() if rec else "-")
        ok = all(r.ok for r in records)
        row.append("ok" if ok else "MISMATCH")
        rows.append(row)
        if max_rows is not None and len(rows) > max_rows:
            rows.append(["..."] + [""] * (len(header) - 1))
            break

    widths = [max(len(row[i]) for row in rows if i < len(row)) for i in range(len(header))]
    lines = []
    for idx, row in enumerate(rows):
        cells = [cell.ljust(widths[i]) for i, cell in enumerate(row)]
        lines.append(" | ".join(cells).rstrip())
        if idx == 0:
            lines.append("-+-".join("-" * w for w in widths))
    return "\n".join(lines)
