"""Drive a DUT through a testbench and collect per-check records.

This is the Judge agent's measuring instrument: it produces the mismatch
count ``m(r)`` and total checks ``tc(r)`` behind the paper's candidate
score ``s(r) = 1 - m(r)/tc(r)`` (Eq. 2), plus the per-clock-edge records
the state-checkpoint mechanism slices into feedback windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hdl.compile import compile_design
from repro.hdl.errors import HdlError
from repro.hdl.simulator import Simulation
from repro.hdl.values import LogicVec
from repro.tb.stimulus import Testbench

_TICK = 10  # simulated nanoseconds per step, for log rendering


@dataclass(frozen=True)
class CheckRecord:
    """One output comparison at one step."""

    step: int
    time: int
    signal: str
    expected: LogicVec
    actual: LogicVec
    ok: bool
    inputs: dict[str, int]


@dataclass
class TestReport:
    """Everything the judge and debug agents need from one simulation."""

    testbench: Testbench
    records: list[CheckRecord] = field(default_factory=list)
    error: str | None = None  # compile/runtime failure, if any

    @property
    def total_checks(self) -> int:
        if self.error is not None:
            return max(self.testbench.total_checks, 1)
        return len(self.records)

    @property
    def mismatches(self) -> int:
        if self.error is not None:
            return self.total_checks
        return sum(1 for r in self.records if not r.ok)

    @property
    def passed(self) -> bool:
        return self.error is None and self.mismatches == 0

    @property
    def score(self) -> float:
        """Normalized mismatch score s(r) = 1 - m(r)/tc(r) (paper Eq. 2)."""
        total = self.total_checks
        if total == 0:
            return 1.0 if self.error is None else 0.0
        return 1.0 - self.mismatches / total

    @property
    def first_mismatch(self) -> CheckRecord | None:
        """Earliest failing check: t_m = min{t : O_dut(t) != O_exp(t)} (Eq. 5)."""
        for record in self.records:
            if not record.ok:
                return record
        return None

    def mismatch_signals(self) -> dict[str, int]:
        """Per-output mismatch counts (for log-only feedback)."""
        out: dict[str, int] = {}
        for record in self.records:
            if not record.ok:
                out[record.signal] = out.get(record.signal, 0) + 1
        return out


def _matches(actual: LogicVec, expected: LogicVec) -> bool:
    """4-state compare; ``x`` bits in the expectation are don't-cares.

    An ``x`` in the DUT output only passes if the expectation marks that
    bit as don't-care.
    """
    width = max(actual.width, expected.width)
    a = actual.resize(width)
    e = expected.resize(width)
    care = ~e.xmask & ((1 << width) - 1)
    if a.xmask & care:
        return False
    return (a.val & care) == (e.val & care)


def run_testbench(
    source: str,
    testbench: Testbench,
    top: str | None = None,
    overrides: dict[str, int] | None = None,
    on_step: "Callable[[Simulation, int], None] | None" = None,
) -> TestReport:
    """Simulate ``source`` against ``testbench``.

    Compile or runtime errors do not raise; they yield a report whose
    ``error`` is set and whose score is 0, matching how a failed
    ``iverilog`` run scores a candidate.

    ``on_step(sim, step_index)`` is called after each step settles at
    its observation point (post-edge for clocked testbenches); waveform
    dumping (:mod:`repro.hdl.vcd`) and coverage measurement
    (:mod:`repro.tb.coverage`) hook in here.
    """
    report = TestReport(testbench=testbench)
    try:
        design = compile_design(source, top, overrides)
        sim = Simulation(design)
    except HdlError as exc:
        report.error = str(exc)
        return report
    except RecursionError:
        report.error = "elaboration recursion limit exceeded"
        return report

    known_inputs = {name for name in design.inputs}
    current_inputs: dict[str, int] = {}

    try:
        if testbench.kind == "clocked":
            _run_clocked(
                sim, testbench, known_inputs, current_inputs, report, on_step
            )
        else:
            _run_comb(
                sim, testbench, known_inputs, current_inputs, report, on_step
            )
    except HdlError as exc:
        report.error = str(exc)
    return report


def _apply_inputs(
    sim: Simulation,
    step_inputs: dict[str, int],
    known: set[str],
    current: dict[str, int],
) -> None:
    for name, value in step_inputs.items():
        if name in known:
            sim.poke(name, value)
            current[name] = value


def _record_checks(
    sim: Simulation,
    step_index: int,
    checks: dict[str, LogicVec],
    current: dict[str, int],
    report: TestReport,
) -> None:
    for signal, expected in checks.items():
        try:
            actual = sim.peek(signal)
        except HdlError:
            actual = LogicVec.all_x(max(expected.width, 1))
        if expected.width < actual.width:
            expected = expected.resize(actual.width)
        report.records.append(
            CheckRecord(
                step=step_index,
                time=step_index * _TICK,
                signal=signal,
                expected=expected,
                actual=actual,
                ok=_matches(actual, expected),
                inputs=dict(current),
            )
        )


def _run_clocked(
    sim: Simulation,
    tb: Testbench,
    known: set[str],
    current: dict[str, int],
    report: TestReport,
    on_step=None,
) -> None:
    clock = tb.clock
    assert clock is not None
    if clock in known:
        sim.poke(clock, 0)
    sim.settle()
    for index, step in enumerate(tb.steps):
        _apply_inputs(sim, step.inputs, known, current)
        sim.settle()
        if clock in known:
            sim.poke(clock, 1)
        sim.settle()
        sim.time = index * _TICK
        _record_checks(sim, index, step.checks, current, report)
        if on_step is not None:
            on_step(sim, index)
        if clock in known:
            sim.poke(clock, 0)
        sim.settle()


def _run_comb(
    sim: Simulation,
    tb: Testbench,
    known: set[str],
    current: dict[str, int],
    report: TestReport,
    on_step=None,
) -> None:
    for index, step in enumerate(tb.steps):
        _apply_inputs(sim, step.inputs, known, current)
        sim.settle()
        sim.time = index * _TICK
        _record_checks(sim, index, step.checks, current, report)
        if on_step is not None:
            on_step(sim, index)
