"""Toggle-coverage measurement for testbench quality.

The paper's Step 3 judge decides whether an optimized testbench is
trustworthy; toggle coverage gives that decision a quantitative
counterpart: what fraction of design bits does the stimulus actually
exercise (0->1 and 1->0)?  Weak stimulus is a leading cause of
testbenches that pass buggy candidates.

Usage::

    cov = measure_toggle_coverage(source, testbench, top)
    print(cov.render())
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hdl.simulator import Simulation
from repro.hdl.values import LogicVec
from repro.tb.runner import TestReport, run_testbench
from repro.tb.stimulus import Testbench


@dataclass
class ToggleCoverage:
    """Per-signal and aggregate toggle statistics."""

    per_signal: dict[str, float] = field(default_factory=dict)
    total_bits: int = 0
    toggled_bits: int = 0
    report: TestReport | None = None

    @property
    def fraction(self) -> float:
        if self.total_bits == 0:
            return 0.0
        return self.toggled_bits / self.total_bits

    def weakest(self, count: int = 5) -> list[tuple[str, float]]:
        """The least-exercised signals (coverage ascending)."""
        ordered = sorted(self.per_signal.items(), key=lambda kv: kv[1])
        return ordered[:count]

    def render(self) -> str:
        lines = [
            f"toggle coverage: {100 * self.fraction:.1f}% "
            f"({self.toggled_bits}/{self.total_bits} bits saw both edges)"
        ]
        for name, frac in sorted(self.per_signal.items()):
            lines.append(f"    {name:24s} {100 * frac:5.1f}%")
        return "\n".join(lines)


class _ToggleTracker:
    def __init__(self) -> None:
        self.rise: dict[str, int] = {}
        self.fall: dict[str, int] = {}
        self.previous: dict[str, LogicVec] = {}
        self.widths: dict[str, int] = {}

    def observe(self, sim: Simulation, _step: int) -> None:
        for name, value in sim.values.items():
            self.widths[name] = value.width
            prev = self.previous.get(name)
            if prev is not None:
                known = ~(prev.xmask | value.xmask)
                self.rise[name] = self.rise.get(name, 0) | (
                    ~prev.val & value.val & known
                )
                self.fall[name] = self.fall.get(name, 0) | (
                    prev.val & ~value.val & known
                )
            self.previous[name] = value


def measure_toggle_coverage(
    source: str,
    testbench: Testbench,
    top: str | None = None,
) -> ToggleCoverage:
    """Run a testbench while tracking which bits toggle both ways."""
    tracker = _ToggleTracker()
    report = run_testbench(source, testbench, top, on_step=tracker.observe)
    coverage = ToggleCoverage(report=report)
    if report.error is not None:
        return coverage
    for name, width in tracker.widths.items():
        mask = (1 << width) - 1
        both = tracker.rise.get(name, 0) & tracker.fall.get(name, 0) & mask
        toggled = bin(both).count("1")
        coverage.per_signal[name] = toggled / width
        coverage.total_bits += width
        coverage.toggled_bits += toggled
    return coverage
