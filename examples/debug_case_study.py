"""Fig. 3 walkthrough: why state checkpoints make debugging targeted.

Injects the paper's exact bug -- a missing ``(c & d)`` term in a
K-map-derived mux input -- then shows the two feedback artifacts side
by side and lets the debug agent attempt a fix with each.

Usage::

    python examples/debug_case_study.py
"""

from repro.agents.debug_agent import DebugAgent
from repro.core.task import DesignTask
from repro.evalsets import get_problem, golden_testbench
from repro.llm import SamplingParams, SimLLM
from repro.llm.mutation import collect_sites, sample_faults
from repro.hdl.parser import parse_module
from repro.tb.checkpoint import render_checkpoint_feedback, render_logonly_feedback
from repro.tb.runner import run_testbench

import numpy as np


def main() -> None:
    problem = get_problem("cb_kmap_mux")
    tb = golden_testbench(problem)
    task = DesignTask.from_problem(problem)

    buggy = problem.golden.replace(
        "mux_in[0] = (~c & d) | (c & ~d) | (c & d);",
        "mux_in[0] = (~c & d) | (c & ~d);",
    )
    report = run_testbench(buggy, tb, problem.top)
    print("=== Buggy module (missing '(c & d)' term in mux_in[0]) ===")
    print(buggy)
    print(f"Score on golden testbench: {report.score:.3f}\n")

    print("=== Feedback WITHOUT checkpoints (conventional testbench) ===")
    print(render_logonly_feedback(report))
    print()
    print("=== Feedback WITH Verilog-state checkpoints (MAGE, Eq. 5-6) ===")
    print(render_checkpoint_feedback(report, window=4))
    print()

    # Let the debug agent try both, on an equivalent injected fault the
    # simulated model recognises as its own output.
    module = parse_module(problem.golden, problem.top)
    rng = np.random.default_rng(7)
    faults = ()
    while not faults:
        trial = sample_faults(module, 1, rng, collect_sites(module))
        if trial:
            source = SimLLM("claude-3.5-sonnet").inject_candidate(problem, trial)
            if not run_testbench(source, tb, problem.top).passed:
                faults = trial

    for label, use_checkpoints in [("checkpoints", True), ("log-only", False)]:
        llm = SimLLM("claude-3.5-sonnet")
        code = llm.inject_candidate(problem, faults)
        current = run_testbench(code, tb, problem.top)
        agent = DebugAgent(llm)
        for round_index in range(3):
            if current.passed:
                break
            trial_code = agent.debug(
                task,
                code,
                current,
                SamplingParams(0.4, 0.95, 1, seed=round_index),
                use_checkpoints=use_checkpoints,
            )
            trial_report = run_testbench(trial_code, tb, problem.top)
            if trial_report.score > current.score:  # Eq. 4 accept/rollback
                code, current = trial_code, trial_report
        verdict = "FIXED" if current.passed else f"stuck at {current.score:.3f}"
        print(f"Debugging with {label:12s}: {verdict}")


if __name__ == "__main__":
    main()
