"""Temperature sweep: the Sec. III-B order-statistics effect, measured.

For a hard FSM problem, sweeps the sampling temperature and plots (as a
text table) the mean score of a single sample vs the best of c=4
samples.  Single-sample quality *degrades* with temperature while
best-of-c quality improves -- the insight behind MAGE's Step 4.

Usage::

    python examples/temperature_sweep.py [problem_id]
"""

import sys

import numpy as np

from repro.agents.judge_agent import JudgeAgent
from repro.agents.rtl_agent import RTLAgent
from repro.core.task import DesignTask
from repro.evalsets import get_problem, golden_testbench
from repro.llm import SamplingParams, SimLLM


def main() -> None:
    problem_id = sys.argv[1] if len(sys.argv) > 1 else "fs_seq_det_1011"
    problem = get_problem(problem_id)
    task = DesignTask.from_problem(problem)
    tb = golden_testbench(problem)
    candidates = 4
    runs = 8

    print(f"problem: {problem.id} (difficulty {problem.difficulty})")
    print(f"{'T':>5s} {'single-sample':>14s} {'best-of-4':>10s} {'perfect%':>9s}")
    for temperature in [0.0, 0.2, 0.4, 0.6, 0.85, 1.0]:
        singles, bests, perfect = [], [], 0
        for seed in range(runs):
            llm = SimLLM("claude-3.5-sonnet")
            agent = RTLAgent(llm)
            judge = JudgeAgent(llm)
            params = SamplingParams(
                temperature=temperature,
                top_p=0.95 if temperature > 0 else 0.01,
                n=1,
                seed=seed,
            )
            sources = agent.sample_candidates(task, None, params, candidates)
            scores = [judge.score(s, tb, task.top).score for s in sources]
            singles.append(scores[0])
            bests.append(max(scores))
            perfect += max(scores) == 1.0
            if temperature == 0.0:
                break  # deterministic: one run tells all
        print(
            f"{temperature:5.2f} {np.mean(singles):14.3f} "
            f"{np.mean(bests):10.3f} {100 * perfect / len(bests):8.1f}%"
        )


if __name__ == "__main__":
    main()
