"""Suite evaluation report: run any registered system on any suite.

Usage::

    python examples/benchmark_report.py [system] [suite] [runs]

    system: a key from repro.baselines.registry (default: mage)
    suite:  verilogeval-human-v1 | verilogeval-v2 (default: verilogeval-v2)
    runs:   evaluation runs per problem (default: 1)

Prints a per-problem breakdown plus the suite Pass@1 -- the table a
leaderboard submission would report.
"""

import sys

from repro.baselines.registry import SYSTEMS, system_names
from repro.evaluation.harness import evaluate_system


def main() -> None:
    system_key = sys.argv[1] if len(sys.argv) > 1 else "mage"
    suite = sys.argv[2] if len(sys.argv) > 2 else "verilogeval-v2"
    runs = int(sys.argv[3]) if len(sys.argv) > 3 else 1

    if system_key not in SYSTEMS:
        print(f"unknown system {system_key!r}; choose from: {', '.join(system_names())}")
        raise SystemExit(1)

    spec = SYSTEMS[system_key]
    print(f"evaluating {spec.table_label} ({spec.model_label}) on {suite}, "
          f"{runs} run(s) per problem\n")
    result = evaluate_system(
        spec.factory, suite, runs=runs, progress=lambda line: print("  " + line)
    )
    print()
    print(f"{'problem':22s} {'difficulty':>10s} {'passes':>8s} {'pass@1':>8s}")
    print("-" * 52)
    for outcome in result.outcomes:
        print(
            f"{outcome.problem_id:22s} {outcome.difficulty:10.2f} "
            f"{outcome.passes}/{outcome.runs:<6d} {outcome.pass_at_1:8.2f}"
        )
    print("-" * 52)
    print(f"{spec.table_label}: Pass@1 = {result.percent:.1f}% on {suite}")
    if spec.paper_v1 and suite == "verilogeval-human-v1":
        print(f"(paper reports {spec.paper_v1}% on VerilogEval-Human v1)")
    if spec.paper_v2 and suite == "verilogeval-v2":
        print(f"(paper reports {spec.paper_v2}% on VerilogEval v2)")


if __name__ == "__main__":
    main()
