"""Quickstart: run MAGE on one benchmark problem and inspect the run.

Usage::

    python examples/quickstart.py [problem_id]

Picks the paper's Fig. 3 problem (a K-map-derived mux) by default,
runs the full five-step multi-agent workflow, and scores the result
against the hidden golden testbench -- exactly how VerilogEval grades
submissions.
"""

import sys

from repro import MAGE, DesignTask, MAGEConfig
from repro.evalsets import get_problem, golden_testbench
from repro.tb.runner import run_testbench


def main() -> None:
    problem_id = sys.argv[1] if len(sys.argv) > 1 else "cb_kmap_mux"
    problem = get_problem(problem_id)

    print(f"=== Problem: {problem.id} ({problem.title}) ===")
    print(problem.spec)
    print()

    engine = MAGE(MAGEConfig.high_temperature())
    result = engine.solve(DesignTask.from_problem(problem), seed=0)

    print("--- Engine transcript ---")
    print(result.transcript.render())
    print()
    print("--- Final RTL ---")
    print(result.source)

    golden = run_testbench(result.source, golden_testbench(problem), problem.top)
    print("--- Verdict ---")
    print(f"internal score (optimized testbench): {result.internal_score:.3f}")
    print(f"golden testbench: {'PASS' if golden.passed else 'FAIL'} "
          f"({golden.mismatches}/{golden.total_checks} mismatches)")
    print(f"LLM completions used: {result.transcript.llm_calls}")


if __name__ == "__main__":
    main()
