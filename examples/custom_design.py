"""Using the EDA substrate directly: simulate your own Verilog.

MAGE's substrate is a complete pure-Python Verilog flow; this example
uses it standalone -- compile a design, drive a testbench, render the
WF-TextLog waveform, and inspect lint diagnostics -- with no agents or
LLM involved.

Usage::

    python examples/custom_design.py
"""

from repro.hdl.compile import compile_design, simulate
from repro.hdl.deps import outputs_in_cone
from repro.hdl.lint import lint
from repro.tb.runner import run_testbench
from repro.tb.stimulus import parse_testbench
from repro.tb.textlog import render_textlog

UART_TX_LITE = """
module tx_lite (
    input wire clk,
    input wire rst,
    input wire start,
    input wire [7:0] data,
    output reg busy,
    output reg out
);
    reg [7:0] shift;
    reg [3:0] count;
    always @(posedge clk) begin
        if (rst) begin
            busy <= 1'b0;
            out <= 1'b1;
            count <= 4'd0;
        end else if (!busy && start) begin
            busy <= 1'b1;
            shift <= data;
            count <= 4'd8;
            out <= 1'b0;  // start bit
        end else if (busy) begin
            if (count != 4'd0) begin
                out <= shift[0];
                shift <= shift >> 1;
                count <= count - 4'd1;
            end else begin
                out <= 1'b1;  // stop bit
                busy <= 1'b0;
            end
        end
    end
endmodule
"""

TB = """
TESTBENCH clocked clock=clk
INPUTS rst start data
OUTPUTS busy out
STEP rst=1 start=0 data=0   ; EXPECT busy=0 out=1
STEP rst=0 start=1 data=0b10100101 ; EXPECT busy=1 out=0
STEP start=0 ; EXPECT out=1
STEP ; EXPECT out=0
STEP ; EXPECT out=1
STEP ; EXPECT out=0
STEP ; EXPECT out=0
STEP ; EXPECT out=1
STEP ; EXPECT out=0
STEP ; EXPECT out=1
STEP ; EXPECT busy=0 out=1
"""


def main() -> None:
    print("=== Lint ===")
    report = lint(UART_TX_LITE)
    print(report.render())
    print()

    print("=== Interactive simulation ===")
    sim = simulate(UART_TX_LITE)
    sim.step({"clk": 0, "rst": 1, "start": 0, "data": 0})
    sim.step({"clk": 1})
    sim.step({"clk": 0, "rst": 0})
    print(f"after reset: busy={sim.peek('busy')}, out={sim.peek('out')}")
    print(f"internal state: shift={sim.peek('shift')}, count={sim.peek('count')}")
    print()

    print("=== Testbench run with WF-TextLog ===")
    tb = parse_testbench(TB)
    result = run_testbench(UART_TX_LITE, tb)
    print(render_textlog(result))
    print(f"\nscore: {result.score:.3f} "
          f"({result.mismatches}/{result.total_checks} mismatches)")
    print()

    print("=== Cone of influence ===")
    design = compile_design(UART_TX_LITE)
    for signal in ["start", "data", "shift"]:
        cone = sorted(outputs_in_cone(design, signal))
        print(f"{signal} influences outputs: {cone}")


if __name__ == "__main__":
    main()
