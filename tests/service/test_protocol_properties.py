"""Property-based tests for the wire protocol framing.

Seeded-random generation (no hypothesis dependency in the image) over
three axes the unit tests cannot sweep by hand:

- arbitrary payload sizes, from empty strings to frames near the size
  ceiling;
- arbitrary read fragmentation: a frame split into random chunks (or
  many frames coalesced into one buffer) must parse identically to a
  single contiguous read;
- arbitrary truncation and corruption: every prefix cut must raise
  :class:`ProtocolError` (or report clean EOF) -- never hang, never
  return a half-frame.
"""

import io
import random

import pytest

from repro.core.events import (
    CandidateScored,
    CellFinished,
    DebugRound,
    RunFinished,
    RunStarted,
    SamplingSummary,
    StageFinished,
)
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    Ack,
    ControlRequest,
    Done,
    ErrorFrame,
    EventFrame,
    ProtocolError,
    SolveRequest,
    StatsReply,
    encode_frame,
    read_frame,
)


class ChunkedStream(io.RawIOBase):
    """A stream that serves reads in pre-cut fragments.

    ``read(n)`` returns at most the next fragment (and never more than
    ``n`` bytes), modelling a TCP socket delivering a frame in
    arbitrary pieces.
    """

    def __init__(self, data: bytes, cuts: list[int]):
        self.fragments = []
        last = 0
        for cut in sorted(set(cuts)):
            if 0 < cut < len(data):
                self.fragments.append(data[last:cut])
                last = cut
        self.fragments.append(data[last:])
        self.fragments = [f for f in self.fragments if f]

    def read(self, n: int = -1) -> bytes:
        if not self.fragments:
            return b""
        fragment = self.fragments[0]
        if n is None or n < 0 or n >= len(fragment):
            self.fragments.pop(0)
            return fragment
        self.fragments[0] = fragment[n:]
        return fragment[:n]


def _random_text(rng: random.Random, max_len: int) -> str:
    length = rng.choice([0, 1, rng.randint(2, max_len)])
    return "".join(
        rng.choice("abcdefghijklmnop qrstuvwxyz\n\"'\\{}[]0123456789\u00e9\u2603")
        for _ in range(length)
    )


def _random_frame(rng: random.Random):
    kind = rng.randrange(7)
    if kind == 0:
        return SolveRequest(
            id=rng.randrange(1 << 31),
            system=_random_text(rng, 40),
            problem=_random_text(rng, 40),
            seed=rng.randrange(1 << 16),
            priority=rng.randint(-5, 5),
            stream=rng.random() < 0.5,
        )
    if kind == 1:
        return ControlRequest(id=rng.randrange(1 << 31), op=_random_text(rng, 12))
    if kind == 2:
        return Ack(
            id=rng.randrange(1 << 31),
            key=_random_text(rng, 60),
            dedup=rng.random() < 0.5,
            cached=rng.random() < 0.5,
        )
    if kind == 3:
        return Done(
            id=rng.randrange(1 << 31),
            source=_random_text(rng, 5000),
            passed=rng.random() < 0.5,
            score=rng.random(),
            seconds=rng.random() * 100,
            system=_random_text(rng, 30),
            cached=rng.random() < 0.5,
            dedup=rng.random() < 0.5,
        )
    if kind == 4:
        return ErrorFrame(
            id=rng.randrange(1 << 31), message=_random_text(rng, 2000)
        )
    if kind == 5:
        return StatsReply(
            id=rng.randrange(1 << 31),
            stats={
                _random_text(rng, 8) or "k": rng.randrange(1 << 20)
                for _ in range(rng.randrange(6))
            },
        )
    event = rng.choice(
        [
            RunStarted(
                system=_random_text(rng, 30),
                task_name=_random_text(rng, 30),
                seed=rng.randrange(1 << 16),
            ),
            StageFinished(
                stage=_random_text(rng, 10),
                index=rng.randrange(10),
                seconds=rng.random(),
                llm_calls=rng.randrange(50),
            ),
            CandidateScored(
                origin=_random_text(rng, 10),
                score=rng.random(),
                passed=rng.random() < 0.5,
                index=rng.randrange(20),
            ),
            SamplingSummary(
                pool_scores=tuple(
                    rng.random() for _ in range(rng.randrange(8))
                ),
                selected_scores=tuple(
                    rng.random() for _ in range(rng.randrange(4))
                ),
            ),
            DebugRound(
                round_index=rng.randrange(10),
                scores=tuple(rng.random() for _ in range(rng.randrange(6))),
            ),
            RunFinished(
                score=rng.random(),
                passed=rng.random() < 0.5,
                llm_calls=rng.randrange(100),
                seconds=rng.random() * 10,
            ),
            CellFinished(
                problem_id=_random_text(rng, 20),
                run_index=rng.randrange(8),
                passed=rng.random() < 0.5,
                score=rng.random(),
                seconds=rng.random(),
                solve_cached=rng.random() < 0.5,
            ),
        ]
    )
    return EventFrame(id=rng.randrange(1 << 31), event=event)


class TestFramingProperties:
    @pytest.mark.parametrize("seed", range(20))
    def test_split_reads_parse_identically(self, seed):
        """A frame fragmented at arbitrary byte positions must decode to
        exactly the frame a contiguous read yields."""
        rng = random.Random(seed)
        frame = _random_frame(rng)
        wire = encode_frame(frame)
        cuts = [rng.randrange(1, max(2, len(wire))) for _ in range(rng.randrange(8))]
        decoded = read_frame(ChunkedStream(wire, cuts))
        assert decoded == frame
        assert read_frame(io.BytesIO(wire)) == frame

    @pytest.mark.parametrize("seed", range(10))
    def test_coalesced_frames_parse_in_order(self, seed):
        """Many frames packed into one buffer come back one by one, then
        a clean EOF (None), regardless of fragmentation."""
        rng = random.Random(1000 + seed)
        frames = [_random_frame(rng) for _ in range(rng.randint(2, 12))]
        wire = b"".join(encode_frame(f) for f in frames)
        cuts = [rng.randrange(1, len(wire)) for _ in range(rng.randrange(20))]
        stream = ChunkedStream(wire, cuts)
        for frame in frames:
            assert read_frame(stream) == frame
        assert read_frame(stream) is None

    @pytest.mark.parametrize("seed", range(20))
    def test_truncated_frames_raise_not_hang(self, seed):
        """Every strict prefix of a frame either raises ProtocolError or
        is a clean EOF (empty prefix) -- no other outcome exists."""
        rng = random.Random(2000 + seed)
        wire = encode_frame(_random_frame(rng))
        for cut in sorted({0, 1, 3, len(wire) // 2, len(wire) - 1}):
            prefix = wire[:cut]
            stream = io.BytesIO(prefix)
            if cut == 0:
                assert read_frame(stream) is None
            else:
                with pytest.raises(ProtocolError):
                    read_frame(stream)

    @pytest.mark.parametrize("seed", range(20))
    def test_random_garbage_never_yields_a_frame(self, seed):
        """Random bytes must produce ProtocolError or clean EOF, never a
        silently-wrong frame and never an unbounded read."""
        rng = random.Random(3000 + seed)
        junk = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 64)))
        stream = io.BytesIO(junk)
        try:
            frame = read_frame(stream)
        except ProtocolError:
            return
        assert frame is None  # only possible for a clean EOF at byte 0

    def test_declared_length_past_ceiling_rejected_before_reading(self):
        header = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError, match="too large"):
            read_frame(io.BytesIO(header + b"x" * 16))

    def test_oversized_payload_rejected_at_encode_time(self, monkeypatch):
        import repro.service.protocol as protocol

        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 64)
        with pytest.raises(ProtocolError, match="too large"):
            encode_frame(ErrorFrame(id=1, message="y" * 256))

    @pytest.mark.parametrize("seed", range(5))
    def test_large_payloads_round_trip(self, seed):
        rng = random.Random(4000 + seed)
        frame = Done(
            id=7,
            source="x" * rng.randrange(100_000, 400_000),
            passed=True,
            score=1.0,
            seconds=0.5,
        )
        wire = encode_frame(frame)
        cuts = [rng.randrange(1, len(wire)) for _ in range(5)]
        assert read_frame(ChunkedStream(wire, cuts)) == frame
