"""Work stealing over ``WaveSteal`` frames: claim, simulate, return.

The deterministic half of the stealing story (the ring-level parity
half lives in ``tests/runtime/test_rollout_parity.py``): a victim
server publishes score-wave tasks on its :class:`StealBoard`, a thief
claims them over the wire, simulates locally, and pushes the reports
back through ``CachePut`` -- after which the victim's own wave lookup
finds a report bit-identical to what a local simulation would have
produced.
"""

import pytest

from repro.evalsets import get_problem, golden_testbench
from repro.runtime.cache import SimulationCache, simulation_key
from repro.runtime.rollout import ScoreTask, StealBoard, rollout_score
from repro.service import (
    ServiceClient,
    ServiceStats,
    SolveServer,
    steal_from_peer,
)


def _golden_task(problem_id):
    problem = get_problem(problem_id)
    golden = golden_testbench(problem)
    task = ScoreTask(problem.golden, golden, problem.top, True, None)
    key = simulation_key(problem.golden, golden, problem.top)
    return task, key


@pytest.fixture()
def victim():
    with SolveServer(workers=1, rollout_batch=4) as server:
        yield server


class TestStealRoundTrip:
    def test_stolen_wave_is_bit_identical_to_local(self, victim):
        pairs = [_golden_task(pid) for pid in ("cb_mux2", "fs_vending")]
        victim.steal_board.publish([(key, task) for task, key in pairs])

        stats = ServiceStats()
        thief_cache = SimulationCache()
        executed = steal_from_peer(
            victim.address, cache=thief_cache, max_items=8, stats=stats
        )
        assert executed == len(pairs)
        assert stats.snapshot()["steal_attempts"] == 1
        assert stats.snapshot()["steal_executed"] == len(pairs)

        for task, key in pairs:
            local = rollout_score(task, SimulationCache()).report
            # The thief's CachePut landed in the victim's sim layer...
            returned = victim.sim_cache.peek_local(key)
            assert returned is not None
            assert returned.score == local.score
            assert returned.passed == local.passed
            assert returned.total_checks == local.total_checks
            # ...and warmed the thief's own cache on the way.
            assert thief_cache.peek_local(key) is not None

        assert victim.stats_snapshot()["service"]["steal_served"] == len(
            pairs
        )
        board = victim.stats_snapshot()["steal"]
        assert board["published"] == len(pairs)
        assert board["claimed"] == len(pairs)
        assert board["pending"] == 0

    def test_empty_board_steals_nothing(self, victim):
        stats = ServiceStats()
        executed = steal_from_peer(
            victim.address, cache=SimulationCache(), stats=stats
        )
        assert executed == 0
        assert stats.snapshot()["steal_executed"] == 0

    def test_corrupt_blob_is_skipped(self, victim):
        """A wrong-typed board entry degrades to 'victim simulates
        locally', never to a wrong result on either side."""
        task, key = _golden_task("cb_mux2")
        victim.steal_board.publish([(key, task)])
        with ServiceClient(victim.address) as client:
            pairs = client.wave_steal(max_items=4)
            assert [k for k, _ in pairs] == [key]
            # Hand back garbage instead of a report: the decode guard
            # on the victim side must not poison the sim layer.
            client.cache_put("sim", key, "not-base64-pickle!")
        assert victim.sim_cache.peek_local(key) is None


class TestStealBoard:
    def test_publish_claim_retract_counters(self):
        board = StealBoard(limit=2)
        task, key = _golden_task("cb_mux2")
        other, other_key = _golden_task("fs_vending")
        third, third_key = _golden_task("sq_counter_ud")
        stuck = board.publish(
            [(key, task), (other_key, other), (third_key, third)]
        )
        assert stuck == 2  # limit bounds staleness
        assert len(board) == 2
        claimed = board.claim(1)
        assert len(claimed) == 1
        board.retract([key, other_key, third_key])
        snap = board.snapshot()
        assert snap["published"] == 2
        assert snap["claimed"] == 1
        assert snap["retracted"] == 1
        assert snap["pending"] == 0

    def test_duplicate_keys_publish_once(self):
        board = StealBoard()
        task, key = _golden_task("cb_mux2")
        assert board.publish([(key, task), (key, task)]) == 1
        assert board.publish([(key, task)]) == 0
        assert len(board) == 1
