"""Peer sharing over the service protocol: cache frames, RemoteTier,
the peer-replay serving rung, remote-tier parity across processes, and
cross-scheduler rollout dedup through the shared fabric."""

import io
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.baselines.registry import SYSTEMS
from repro.core.events import ListSink
from repro.evalsets import get_problem
from repro.runtime import SerialExecutor, evaluate_many
from repro.runtime.cache import (
    RemoteTier,
    SimulationCache,
    SolveCellCache,
    SolveCellRecord,
    decode_value,
    encode_value,
    simulation_count,
)
from repro.runtime.rollout import RolloutRequest, RolloutScheduler
from repro.service import (
    CacheGet,
    CachePut,
    CacheReply,
    ServiceClient,
    ServiceError,
    SolveServer,
    encode_frame,
    read_frame,
    solve_grid,
    stop_server,
)
from repro.tb.runner import TestReport

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def canonical(events):
    """Event stream as JSON payloads with wall-clock fields zeroed."""
    payloads = []
    for event in events:
        payload = event.to_json()
        if "seconds" in payload:
            payload["seconds"] = 0.0
        payloads.append(payload)
    return payloads


@pytest.fixture()
def server():
    with SolveServer(workers=1) as live:
        yield live


class TestCacheFrames:
    def test_cache_get_round_trips(self):
        frame = CacheGet(id=3, layer="sim", key="abc123")
        assert read_frame(io.BytesIO(encode_frame(frame))) == frame

    def test_cache_put_round_trips(self):
        frame = CachePut(id=4, layer="solve", key="k", blob=encode_value(42))
        assert read_frame(io.BytesIO(encode_frame(frame))) == frame

    def test_cache_reply_round_trips(self):
        for reply in (
            CacheReply(id=5),
            CacheReply(id=6, found=True, blob="eJw="),
            CacheReply(id=7, stored=True),
        ):
            assert read_frame(io.BytesIO(encode_frame(reply))) == reply


class TestServerCacheFrames:
    def test_put_then_get_round_trips_a_record(self, server):
        record = SolveCellRecord(source="module m; endmodule", system="s")
        with ServiceClient(server.address) as client:
            assert client.cache_put("solve", "k1", encode_value(record))
            blob = client.cache_get("solve", "k1")
        assert blob is not None
        assert decode_value(blob, SolveCellRecord) == record
        assert server.stats.snapshot()["peer_puts"] == 1
        assert server.stats.snapshot()["peer_hits"] == 1

    def test_missing_key_is_not_found(self, server):
        with ServiceClient(server.address) as client:
            assert client.cache_get("solve", "absent") is None
        snapshot = server.stats.snapshot()
        assert snapshot["peer_gets"] == 1
        assert snapshot["peer_hits"] == 0

    def test_wrong_typed_blob_is_refused(self, server):
        """A solve-cell record cannot be pushed into the sim layer: the
        receiver type-guards like a disk-tier read."""
        record = SolveCellRecord(source="x", system="s")
        with ServiceClient(server.address) as client:
            assert not client.cache_put("sim", "k", encode_value(record))
            assert client.cache_get("sim", "k") is None

    def test_garbage_blob_is_refused(self, server):
        with ServiceClient(server.address) as client:
            assert not client.cache_put("solve", "k", "!!not-base64!!")

    def test_unknown_layer_is_a_miss(self, server):
        with ServiceClient(server.address) as client:
            assert client.cache_get("martian", "k") is None
            assert not client.cache_put("martian", "k", encode_value(1))


class TestRemoteTier:
    def test_round_trip_through_a_live_server(self, server):
        record = SolveCellRecord(source="module m; endmodule", system="s")
        writer = RemoteTier(
            server.address, layer="solve", value_type=SolveCellRecord
        )
        writer.put("k", record)
        reader = RemoteTier(
            server.address, layer="solve", value_type=SolveCellRecord
        )
        assert reader.get("k") == record
        assert reader.stats.hits == 1
        writer.close()
        reader.close()

    def test_dead_peer_is_a_fast_miss_then_marked_down(self):
        tier = RemoteTier(
            "127.0.0.1:1", layer="sim", value_type=TestReport,
            connect_timeout=0.5, max_failures=2,
        )
        for _ in range(3):
            assert tier.get("k") is None  # never raises
        assert tier.stats.errors == 2  # further calls skip the socket
        assert "[down]" in tier.describe()

    def test_peered_cache_get_reads_through_and_promotes(self, server):
        record = SolveCellRecord(source="module m; endmodule", system="s")
        server.solve_cache.put("k", record)
        local = SolveCellCache(peers=(server.address,))
        assert local.get("k") == record
        assert local.stats.remote_hits == 1
        # Promoted: the second lookup is local.
        assert local.get("k") == record
        assert local.stats.remote_hits == 1
        local.close()

    def test_peered_cache_put_gossips_to_the_server(self, server):
        local = SolveCellCache(peers=(server.address,))
        record = SolveCellRecord(source="module g; endmodule", system="s")
        local.put("k2", record)
        assert server.solve_cache.peek_local("k2") == record
        local.close()


class TestPeerReplayServing:
    def test_cold_server_serves_peer_warm_cell_without_executing(self):
        """The serving ladder's peer-replay rung: a cell warm on A is
        served by a cold B straight through B's remote tier -- same
        source, same typed event stream, zero pipeline executions."""
        with SolveServer(workers=1) as warm:
            sink_a = ListSink()
            with ServiceClient(warm.address) as client:
                outcome_a = client.solve(
                    "mage", "cb_kmap_mux", seed=0, events=sink_a
                )
            assert warm.executed_count() == 1
            with SolveServer(
                workers=1, cache_peers=(warm.address,)
            ) as cold:
                sink_b = ListSink()
                with ServiceClient(cold.address) as client:
                    outcome_b = client.solve(
                        "mage", "cb_kmap_mux", seed=0, events=sink_b
                    )
                assert cold.executed_count() == 0  # replayed, not re-run
                assert outcome_b.cached
        assert outcome_b.source == outcome_a.source
        assert outcome_b.passed == outcome_a.passed
        assert outcome_b.score == outcome_a.score
        assert canonical(sink_b.events) == canonical(sink_a.events)


def _spawn_server(extra_args=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("listening on "):
        proc.kill()
        raise RuntimeError(f"server failed to start: {line!r}")
    return proc, line.removeprefix("listening on ")


class TestRemoteTierParity:
    """The acceptance contract: a 2-process grid where machine B runs
    cold but is served via machine A's RemoteTier must produce
    bit-identical rows and event streams to a fully local --jobs 1
    run."""

    PROBLEMS = ["cb_mux2", "cb_kmap_mux"]

    def test_cold_process_served_via_peer_matches_local(self):
        problems = [get_problem(p) for p in self.PROBLEMS]
        started = []
        try:
            proc_a, addr_a = _spawn_server()
            started.append((proc_a, addr_a))
            proc_b, addr_b = _spawn_server(("--cache-peer", addr_a))
            started.append((proc_b, addr_b))

            # Warm machine A only.
            warm, _ = solve_grid(
                "mage", "verilogeval-v2", runs=1, seed0=0,
                problems=problems, shards=[addr_a],
            )
            # Machine B is cold; every cell must replay through A.
            via_peer, report = solve_grid(
                "mage", "verilogeval-v2", runs=1, seed0=0,
                problems=problems, shards=[addr_b],
            )
            assert report.cached_cells == report.cells
            with SerialExecutor() as executor:
                local, _ = evaluate_many(
                    SYSTEMS["mage"].factory, "verilogeval-v2", runs=1,
                    seed0=0, problems=problems, executor=executor,
                )
            assert via_peer.outcomes == local.outcomes  # bit-identical rows
            assert warm.outcomes == local.outcomes

            # Sharded peers: the same grid split across both processes
            # merges to the same rows again.
            sharded, _ = solve_grid(
                "mage", "verilogeval-v2", runs=1, seed0=0,
                problems=problems, shards=[addr_a, addr_b],
            )
            assert sharded.outcomes == local.outcomes

            # Event-stream parity: B's replayed stream == a local solve.
            local_sink = ListSink()
            system = SYSTEMS["mage"].factory()
            from repro.core.task import DesignTask

            system.solve(
                DesignTask.from_problem(problems[0]), seed=0, sink=local_sink
            )
            remote_sink = ListSink()
            with ServiceClient(addr_b) as client:
                client.solve(
                    "mage", problems[0].id, seed=0, events=remote_sink
                )
            assert canonical(remote_sink.events) == canonical(
                local_sink.events
            )
        finally:
            for proc, address in started:
                try:
                    stop_server(address)
                except (OSError, ServiceError, ValueError):
                    pass
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()


def _rollout_request(problem_id, seed=1):
    from repro.evalsets import golden_testbench

    problem = get_problem(problem_id)
    return RolloutRequest(
        index=0,
        factory=SYSTEMS["mage"].factory,
        problem=problem,
        golden_tb=golden_testbench(problem),
        seed=seed,
    )


class TestCrossSchedulerDedup:
    def test_cross_wave_dedup_within_one_scheduler(self):
        """Wave N+1 reuses wave N's candidate sims through the fabric's
        memory tier (no solve cache involved)."""
        scheduler = RolloutScheduler(
            executor=SerialExecutor(), cache=SimulationCache()
        )
        first = scheduler.run([_rollout_request("fs_vending")])[0]
        assert first.error is None
        assert scheduler.dedup.executed > 0
        executed_after_first = scheduler.dedup.executed
        second = scheduler.run([_rollout_request("fs_vending")])[0]
        assert second.source == first.source
        assert scheduler.dedup.fabric_hits > 0  # served pre-dispatch
        assert scheduler.dedup.executed == executed_after_first  # no new sims

    def test_cross_scheduler_dedup_through_a_peer(self, server):
        """Two schedulers sharing no memory dedup through the peer ring:
        B's score wave is served entirely by what A gossiped."""
        scheduler_a = RolloutScheduler(
            executor=SerialExecutor(),
            cache=SimulationCache(peers=(server.address,)),
        )
        result_a = scheduler_a.run([_rollout_request("fs_vending")])[0]
        assert result_a.error is None
        assert scheduler_a.dedup.executed > 0

        fresh_cache = SimulationCache(peers=(server.address,))
        scheduler_b = RolloutScheduler(
            executor=SerialExecutor(), cache=fresh_cache
        )
        sims_before = simulation_count()
        result_b = scheduler_b.run([_rollout_request("fs_vending")])[0]
        assert result_b.error is None
        assert result_b.source == result_a.source
        assert result_b.passed == result_a.passed
        assert result_b.score == result_a.score
        # The shared fabric dropped every duplicate candidate sim:
        # B's score wave dispatched its candidates, but each lookup was
        # served by the peer -- the whole run (close-phase debug and
        # golden scoring included) simulated nothing new.
        assert scheduler_b.dedup.executed > 0
        assert scheduler_b.dedup.remote_hits > 0
        assert simulation_count() == sims_before
        assert fresh_cache.stats.remote_hits > 0
