"""Prometheus text-exposition rendering of stats snapshots.

Metric names are stable API, so these tests pin exact lines: HELP/TYPE
headers, label escaping, counter-vs-gauge kinds, and the sparse-dict
contract (a snapshot without a section renders no metrics for it,
never an error).
"""

from repro.service import SolveServer, render_prometheus


def _lines(text):
    return text.splitlines()


class TestRenderPrometheus:
    def test_full_snapshot_renders_expected_families(self):
        stats = {
            "address": "127.0.0.1:7777",
            "workers": 2,
            "rollout_batch": 4,
            "pending": 3,
            "broker": {"submitted": 10, "completed": 9},
            "service": {"requests": 10, "steal_served": 2},
            "gateway": {"calls": 5, "retries": 1},
            "gateway_mode": "live",
            "stages": {"spec": {"runs": 4, "seconds": 1.25}},
            "scheduler": {
                "dedup": {"submitted": 40, "executed": 30},
                "speculation": {"launched": 6, "used": 5},
            },
            "steal": {"published": 8, "claimed": 2, "peers": ["x"]},
            "caches": {
                "simulation": {
                    "entries": 12,
                    "hits": 30,
                    "tiers": [
                        {"kind": "memory", "detail": "", "hits": 30},
                    ],
                },
            },
        }
        text = render_prometheus(stats)
        lines = _lines(text)
        assert (
            'repro_info{address="127.0.0.1:7777",gateway_mode="live"} 1'
            in lines
        )
        assert "# TYPE repro_info gauge" in lines
        assert "repro_workers 2" in lines
        assert "repro_rollout_batch 4" in lines
        assert "repro_pending_jobs 3" in lines
        assert "# TYPE repro_broker_submitted counter" in lines
        assert "repro_broker_submitted 10" in lines
        assert "repro_service_steal_served 2" in lines
        assert "repro_gateway_calls 5" in lines
        assert 'repro_stage_runs_total{stage="spec"} 4' in lines
        assert 'repro_stage_seconds_total{stage="spec"} 1.25' in lines
        assert "repro_scheduler_dedup_submitted 40" in lines
        assert "repro_speculation_launched 6" in lines
        assert "repro_steal_published 8" in lines
        assert 'repro_cache_entries{layer="simulation"} 12' in lines
        assert "# TYPE repro_cache_entries gauge" in lines
        assert "# TYPE repro_cache_hits counter" in lines
        assert (
            'repro_cache_tier_hits{layer="simulation",tier="memory",'
            'detail=""} 30'
        ) in lines
        assert text.endswith("\n")

    def test_help_precedes_type_precedes_samples(self):
        text = render_prometheus({"workers": 1})
        lines = _lines(text)
        idx = lines.index("# TYPE repro_workers gauge")
        assert lines[idx - 1].startswith("# HELP repro_workers ")
        assert lines[idx + 1] == "repro_workers 1"

    def test_label_values_are_escaped(self):
        text = render_prometheus(
            {"stages": {'we"ird\nstage\\': {"runs": 1, "seconds": 0.5}}}
        )
        assert (
            'repro_stage_runs_total{stage="we\\"ird\\nstage\\\\"} 1'
            in _lines(text)
        )

    def test_sparse_snapshot_skips_absent_sections(self):
        text = render_prometheus({})
        assert "repro_info 1" in _lines(text)  # identity always renders
        for family in (
            "repro_broker_",
            "repro_gateway_",
            "repro_scheduler_",
            "repro_speculation_",
            "repro_steal_",
            "repro_cache_",
            "repro_stage_",
        ):
            assert family not in text

    def test_non_numeric_and_bool_values_are_skipped(self):
        text = render_prometheus(
            {"service": {"requests": 1, "name": "solver", "busy": True}}
        )
        lines = _lines(text)
        assert "repro_service_requests 1" in lines
        assert "repro_service_name" not in text
        assert "repro_service_busy" not in text

    def test_live_server_snapshot_round_trips(self):
        """The renderer consumes a real ``stats_snapshot()`` as-is."""
        with SolveServer(workers=1, rollout_batch=2) as server:
            text = render_prometheus(server.stats_snapshot())
        lines = _lines(text)
        assert "repro_rollout_batch 2" in lines
        assert "repro_workers 1" in lines
        assert any(
            line.startswith("repro_steal_published") for line in lines
        )
        assert any(
            line.startswith("repro_scheduler_dedup_submitted")
            for line in lines
        )
