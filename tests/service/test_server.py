"""End-to-end server tests: streaming, caching, dedup, drain."""

import threading

import pytest

from repro.baselines.registry import SYSTEMS
from repro.core.events import ListSink
from repro.core.task import DesignTask
from repro.evalsets import get_problem, golden_testbench
from repro.service import ServiceClient, ServiceError, SolveServer
from repro.tb.runner import run_testbench


@pytest.fixture()
def server():
    with SolveServer(workers=2) as live:
        yield live


class TestSolveStream:
    def test_events_match_a_local_solve(self, server):
        local_sink = ListSink()
        system = SYSTEMS["mage"].factory()
        task = DesignTask.from_problem(get_problem("cb_kmap_mux"))
        local_source = system.solve(task, seed=0, sink=local_sink)

        remote_sink = ListSink()
        with ServiceClient(server.address) as client:
            outcome = client.solve(
                "mage", "cb_kmap_mux", seed=0, events=remote_sink
            )
        # The wire stream is the local event stream, minus nothing: the
        # deterministic fields agree event-by-event (wall-clock fields
        # differ between independent runs, so compare kinds + renders of
        # the timing-free events).
        assert [e.kind for e in remote_sink.events] == [
            e.kind for e in local_sink.events
        ]
        assert outcome.source == local_source
        golden = run_testbench(
            local_source,
            golden_testbench(get_problem("cb_kmap_mux")),
            get_problem("cb_kmap_mux").top,
        )
        assert outcome.passed == golden.passed
        assert outcome.score == golden.score

    def test_iter_solve_yields_events_then_outcome(self, server):
        with ServiceClient(server.address) as client:
            iterator = client.iter_solve("mage", "cb_mux2", seed=0)
            kinds = [event.kind for event in iterator]
            outcome = client.last_outcome
        assert kinds[0] == "run-started"
        assert kinds[-1] == "run-finished"
        assert outcome is not None and outcome.source

    def test_abandoned_stream_keeps_connection_usable(self, server):
        """Breaking out of iter_solve mid-stream must not desync the
        next request on the same connection."""
        with ServiceClient(server.address) as client:
            iterator = client.iter_solve("mage", "fs_vending", seed=1)
            first = next(iterator)
            assert first.kind == "run-started"
            iterator.close()  # abandon mid-stream; reply is drained
            outcome = client.solve("mage", "cb_mux2", seed=0)
            assert outcome.source

    def test_unknown_system_is_an_error_frame(self, server):
        with ServiceClient(server.address) as client:
            with pytest.raises(ServiceError, match="unknown system"):
                client.solve("martian", "cb_mux2")

    def test_unknown_problem_is_an_error_frame(self, server):
        with ServiceClient(server.address) as client:
            with pytest.raises(ServiceError):
                client.solve("mage", "no_such_problem")
        # The connection survives an error and serves the next request.
        with ServiceClient(server.address) as client:
            assert client.solve("mage", "cb_mux2").source


class TestWarmServing:
    def test_repeat_submit_is_served_from_cache(self, server):
        first_sink, second_sink = ListSink(), ListSink()
        with ServiceClient(server.address) as client:
            first = client.solve("mage", "cb_kmap_mux", events=first_sink)
            second = client.solve("mage", "cb_kmap_mux", events=second_sink)
        assert not first.cached and second.cached
        # Replay is bit-identical: the cached record stores the live
        # stream, wall-clock fields included.
        assert second_sink.events == first_sink.events
        assert second.source == first.source
        assert (second.passed, second.score) == (first.passed, first.score)

    def test_warm_serving_never_touches_a_worker(self, server):
        with ServiceClient(server.address) as client:
            client.solve("mage", "cb_mux2")
            before = client.stats()
            client.solve("mage", "cb_mux2")
            after = client.stats()
        assert after["service"]["executed"] == before["service"]["executed"]
        assert (
            after["service"]["cache_served"]
            == before["service"]["cache_served"] + 1
        )
        # The warm path bypasses the broker queue entirely.
        assert after["broker"]["submitted"] == before["broker"]["submitted"]

    def test_stats_snapshot_reports_both_cache_layers(self, server):
        with ServiceClient(server.address) as client:
            client.solve("mage", "cb_mux2")
            stats = client.stats()
        assert stats["caches"]["simulation"]["stores"] > 0
        assert stats["caches"]["solve_cell"]["stores"] == 1
        assert stats["workers"] == 2


class TestInFlightDedup:
    def test_concurrent_duplicates_execute_once(self, server):
        """The acceptance contract: N clients racing on one cold cell
        cost exactly one pipeline execution (worker counters prove it),
        and every client receives the full result."""
        clients = 4
        outcomes = [None] * clients
        streams = [ListSink() for _ in range(clients)]
        barrier = threading.Barrier(clients)

        def submit(index):
            with ServiceClient(server.address) as client:
                barrier.wait()
                outcomes[index] = client.solve(
                    "mage", "fs_vending", seed=7, events=streams[index]
                )

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert all(o is not None for o in outcomes)
        assert server.executed_count() == 1
        assert len({o.source for o in outcomes}) == 1
        assert len({(o.passed, o.score) for o in outcomes}) == 1
        # Every subscriber saw the same stream (replay + live are the
        # same events, whichever mix each subscriber got).
        reference = streams[0].events
        assert reference
        for stream in streams[1:]:
            assert stream.events == reference


class TestRolloutBatchingMode:
    @pytest.fixture()
    def rollout_server(self):
        with SolveServer(workers=1, rollout_batch=3) as live:
            yield live

    def test_concurrent_distinct_cells_share_a_batch(self, rollout_server):
        """Gang-scheduling three dedup-distinct cells produces the same
        outcomes a plain worker would, one pipeline execution each."""
        ids = ["cb_mux2", "cb_kmap_mux", "fs_vending"]
        outcomes = {}
        barrier = threading.Barrier(len(ids))

        def submit(problem_id):
            with ServiceClient(rollout_server.address) as client:
                barrier.wait()
                outcomes[problem_id] = client.solve(
                    "mage", problem_id, seed=3
                )

        threads = [
            threading.Thread(target=submit, args=(pid,)) for pid in ids
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert set(outcomes) == set(ids)
        assert rollout_server.executed_count() == len(ids)
        for problem_id in ids:
            system = SYSTEMS["mage"].factory()
            task = DesignTask.from_problem(get_problem(problem_id))
            assert outcomes[problem_id].source == system.solve(task, seed=3)

    def test_duplicates_still_execute_once_under_batching(self, rollout_server):
        clients = 3
        outcomes = [None] * clients
        barrier = threading.Barrier(clients)

        def submit(index):
            with ServiceClient(rollout_server.address) as client:
                barrier.wait()
                outcomes[index] = client.solve("mage", "fs_vending", seed=7)

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert all(o is not None for o in outcomes)
        assert rollout_server.executed_count() == 1
        assert len({o.source for o in outcomes}) == 1

    def test_unknown_system_fails_only_its_job(self, rollout_server):
        with ServiceClient(rollout_server.address) as client:
            with pytest.raises(ServiceError, match="unknown system"):
                client.solve("martian", "cb_mux2")
            assert client.solve("mage", "cb_mux2", seed=1).source

    def test_stats_report_batching_mode(self, rollout_server):
        with ServiceClient(rollout_server.address) as client:
            stats = client.stats()
        assert stats["rollout_batch"] == 3


class TestLifecycle:
    def test_ping(self, server):
        with ServiceClient(server.address) as client:
            assert client.ping()

    def test_client_initiated_graceful_shutdown(self):
        server = SolveServer(workers=1).start()
        with ServiceClient(server.address) as client:
            client.shutdown_server()
        assert server.wait(timeout=30)
        with pytest.raises(OSError):
            ServiceClient(server.address, timeout=2)

    def test_shutdown_is_idempotent(self):
        server = SolveServer(workers=1).start()
        server.shutdown()
        server.shutdown()
        assert server.wait(timeout=1)

    def test_submits_after_drain_are_refused(self):
        server = SolveServer(workers=1).start()
        server.shutdown()
        with pytest.raises(OSError):
            ServiceClient(server.address, timeout=2)
