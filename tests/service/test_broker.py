"""Broker contract: priority, backpressure, in-flight dedup, drain."""

import threading

import pytest

from repro.core.events import TestbenchReady
from repro.service.broker import Broker, BrokerClosed, BrokerFull


def _drain(subscription):
    """Collect (events, outcome) from one subscription."""
    events, outcome = [], None
    for kind, payload in subscription:
        if kind == "event":
            events.append(payload)
        else:
            outcome = (kind, payload)
    return events, outcome


class TestPriority:
    def test_higher_priority_pops_first(self):
        broker = Broker()
        broker.submit("s", "low", 0, priority=0)
        broker.submit("s", "high", 0, priority=5)
        assert broker.next_job().problem == "high"
        assert broker.next_job().problem == "low"

    def test_fifo_within_a_priority_level(self):
        broker = Broker()
        for name in ("a", "b", "c"):
            broker.submit("s", name, 0, priority=1)
        assert [broker.next_job().problem for _ in range(3)] == ["a", "b", "c"]


class TestDedup:
    def test_identical_submits_share_one_job(self):
        broker = Broker()
        job1, sub1, dedup1 = broker.submit("mage", "cb_mux2", 3)
        job2, sub2, dedup2 = broker.submit("mage", "cb_mux2", 3)
        assert job1 is job2
        assert not dedup1 and dedup2
        assert broker.stats.deduped == 1
        assert len(broker) == 1  # one queued execution, two subscribers

        event = TestbenchReady(total_checks=4)
        job = broker.next_job()
        job.publish(event)
        broker.finish(job, "result")
        for sub in (sub1, sub2):
            events, outcome = _drain(sub)
            assert events == [event]
            assert outcome == ("done", "result")

    def test_dedup_bumps_queued_priority(self):
        """A high-priority duplicate must not wait behind a sweep: the
        attach re-ranks the shared queued job."""
        broker = Broker()
        broker.submit("s", "sweep1", 0, priority=0)
        broker.submit("s", "cell", 0, priority=0)
        broker.submit("s", "sweep2", 0, priority=0)
        _, _, dedup = broker.submit("s", "cell", 0, priority=9)
        assert dedup
        assert broker.next_job().problem == "cell"  # jumped the sweep
        assert broker.next_job().problem == "sweep1"
        assert broker.next_job().problem == "sweep2"
        assert len(broker) == 0  # the stale bumped entry was not double-counted
        assert broker.next_job(timeout=0.01) is None

    def test_different_seed_is_a_different_job(self):
        broker = Broker()
        job1, _, _ = broker.submit("mage", "cb_mux2", 0)
        job2, _, dedup = broker.submit("mage", "cb_mux2", 1)
        assert job1 is not job2 and not dedup

    def test_running_job_still_dedups(self):
        """Dedup covers popped-but-unfinished jobs, not just queued ones."""
        broker = Broker()
        job, _, _ = broker.submit("s", "p", 0)
        assert broker.next_job() is job  # now "running"
        again, _, dedup = broker.submit("s", "p", 0)
        assert again is job and dedup

    def test_finished_key_starts_fresh(self):
        broker = Broker()
        job, _, _ = broker.submit("s", "p", 0)
        broker.next_job()
        broker.finish(job, "r")
        fresh, _, dedup = broker.submit("s", "p", 0)
        assert fresh is not job and not dedup

    def test_late_subscriber_replays_history(self):
        broker = Broker()
        job, _, _ = broker.submit("s", "p", 0)
        first = TestbenchReady(total_checks=1)
        second = TestbenchReady(total_checks=2)
        job.publish(first)
        late = job.subscribe()
        job.publish(second)
        broker.finish(job, "r")
        events, outcome = _drain(late)
        assert events == [first, second]
        assert outcome == ("done", "r")

    def test_subscribe_after_settle_gets_outcome(self):
        broker = Broker()
        job, _, _ = broker.submit("s", "p", 0)
        broker.fail(job, "boom")
        events, outcome = _drain(job.subscribe())
        assert events == []
        assert outcome == ("error", "boom")
        assert broker.stats.failed == 1


class TestBackpressure:
    def test_queue_ceiling_rejects(self):
        broker = Broker(max_pending=2)
        broker.submit("s", "a", 0)
        broker.submit("s", "b", 0)
        with pytest.raises(BrokerFull):
            broker.submit("s", "c", 0)
        assert broker.stats.rejected == 1
        # Duplicates of queued work still attach: dedup costs no slot.
        _, _, dedup = broker.submit("s", "a", 0)
        assert dedup

    def test_popping_frees_a_slot(self):
        broker = Broker(max_pending=1)
        broker.submit("s", "a", 0)
        broker.next_job()
        broker.submit("s", "b", 0)  # no raise


class TestDrain:
    def test_close_refuses_new_work(self):
        broker = Broker()
        broker.close()
        with pytest.raises(BrokerClosed):
            broker.submit("s", "p", 0)

    def test_queued_jobs_drain_after_close(self):
        broker = Broker()
        broker.submit("s", "a", 0)
        broker.submit("s", "b", 0)
        broker.close()
        assert broker.next_job().problem == "a"
        assert broker.next_job().problem == "b"
        assert broker.next_job() is None

    def test_close_wakes_blocked_workers(self):
        broker = Broker()
        results = []

        def wait_for_work():
            results.append(broker.next_job())

        thread = threading.Thread(target=wait_for_work)
        thread.start()
        broker.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results == [None]

    def test_timeout_returns_none(self):
        broker = Broker()
        assert broker.next_job(timeout=0.01) is None
