"""Wire protocol: framing, versioning, and frame round-trips."""

import io
import json
import struct

import pytest

from repro.core.events import RunFinished, TestbenchReady
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Ack,
    ControlRequest,
    Done,
    ErrorFrame,
    EventFrame,
    ProtocolError,
    SolveRequest,
    StatsReply,
    encode_frame,
    read_frame,
    write_frame,
)

FRAMES = [
    SolveRequest(id=1, system="mage", problem="cb_mux2", seed=3, priority=5),
    SolveRequest(id=2, system="mage", problem="cb_mux2", stream=False),
    ControlRequest(id=3, op="stats"),
    Ack(id=4, key="mage/cb_mux2/3", dedup=True),
    Ack(id=5, key="k", cached=True),
    EventFrame(id=6, event=TestbenchReady(total_checks=4, regen_index=1)),
    EventFrame(
        id=7,
        event=RunFinished(score=0.875, passed=False, llm_calls=9, seconds=1.5),
    ),
    Done(
        id=8,
        source="module m; endmodule",
        passed=True,
        score=1.0,
        seconds=0.25,
        system="mage[x]",
        cached=True,
        dedup=True,
    ),
    ErrorFrame(id=9, message="busy: queue full"),
    StatsReply(id=10, stats={"broker": {"submitted": 2}}),
]


class TestFraming:
    @pytest.mark.parametrize(
        "frame", FRAMES, ids=[type(f).__name__ + str(f.id) for f in FRAMES]
    )
    def test_round_trip(self, frame):
        stream = io.BytesIO(encode_frame(frame))
        assert read_frame(stream) == frame
        assert read_frame(stream) is None  # clean EOF after one frame

    def test_write_then_read_many(self):
        buffer = io.BytesIO()
        for frame in FRAMES:
            write_frame(buffer, frame)
        buffer.seek(0)
        assert [read_frame(buffer) for _ in FRAMES] == FRAMES

    def test_frames_are_versioned(self):
        data = encode_frame(Ack(id=1))
        payload = json.loads(data[4:].decode())
        assert payload["v"] == PROTOCOL_VERSION

    def test_version_mismatch_rejected(self):
        payload = Ack(id=1).to_wire()
        payload["v"] = PROTOCOL_VERSION + 1
        data = json.dumps(payload).encode()
        stream = io.BytesIO(struct.pack(">I", len(data)) + data)
        with pytest.raises(ProtocolError, match="version mismatch"):
            read_frame(stream)

    def test_unversioned_frame_rejected(self):
        data = json.dumps({"type": "ack", "id": 1}).encode()
        stream = io.BytesIO(struct.pack(">I", len(data)) + data)
        with pytest.raises(ProtocolError, match="version mismatch"):
            read_frame(stream)

    def test_unknown_frame_type_rejected(self):
        data = json.dumps({"type": "warp", "v": PROTOCOL_VERSION}).encode()
        stream = io.BytesIO(struct.pack(">I", len(data)) + data)
        with pytest.raises(ProtocolError, match="unknown frame type"):
            read_frame(stream)

    def test_bad_event_payload_rejected(self):
        data = json.dumps(
            {
                "type": "event",
                "id": 1,
                "v": PROTOCOL_VERSION,
                "event": {"kind": "no-such-kind"},
            }
        ).encode()
        stream = io.BytesIO(struct.pack(">I", len(data)) + data)
        with pytest.raises(ProtocolError, match="bad event frame"):
            read_frame(stream)

    def test_truncated_header(self):
        with pytest.raises(ProtocolError, match="truncated frame header"):
            read_frame(io.BytesIO(b"\x00\x00"))

    def test_truncated_body(self):
        data = encode_frame(Ack(id=1))
        with pytest.raises(ProtocolError, match="truncated frame body"):
            read_frame(io.BytesIO(data[:-3]))

    def test_oversize_length_rejected(self):
        stream = io.BytesIO(struct.pack(">I", MAX_FRAME_BYTES + 1) + b"x")
        with pytest.raises(ProtocolError, match="frame too large"):
            read_frame(stream)

    def test_non_json_payload_rejected(self):
        data = b"not json at all"
        stream = io.BytesIO(struct.pack(">I", len(data)) + data)
        with pytest.raises(ProtocolError, match="bad frame payload"):
            read_frame(stream)

    def test_event_frame_carries_typed_event(self):
        frame = EventFrame(id=1, event=TestbenchReady(total_checks=7))
        rebuilt = read_frame(io.BytesIO(encode_frame(frame)))
        assert isinstance(rebuilt.event, TestbenchReady)
        assert rebuilt.event.total_checks == 7
