"""Chaos harness for the elastic ring: a scriptable TCP fault
injector plus the failure drills the async control plane must survive.

:class:`ChaosProxy` is a localhost forwarder that sits between a
client and a live server and misbehaves on command -- added latency,
a one-shot mid-frame truncation of the reply stream, a partition that
refuses and severs connections until healed.  The drills pin the
recovery contracts down:

- a ring member SIGKILLed mid-grid re-shards its orphaned cells onto
  the survivors with bit-identical result rows;
- a write-behind gossip backlog accumulated against a partitioned
  peer drains completely once the partition heals;
- a reply stream severed halfway through a frame is retried on a
  fresh connection and converges on the same outcome.

Everything here spawns real sockets (and, for the kill drill, real
server processes), so the module is ``slow``-marked and excluded from
the default tier-1 run; CI exercises it in a dedicated step.
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from collections import Counter
from pathlib import Path

import pytest

import repro
from repro.baselines.registry import SYSTEMS
from repro.core.events import CellFinished
from repro.evalsets import get_problem
from repro.runtime import SerialExecutor, evaluate_many
from repro.runtime.cache import SimulationCache, SolveCellCache, SolveCellRecord
from repro.service import (
    HashRing,
    MultiplexedClient,
    ServiceClient,
    ServiceError,
    SolveServer,
    fetch_peers,
    parse_address,
    ring_key,
    solve_grid,
)

pytestmark = pytest.mark.slow

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


class ChaosProxy:
    """A localhost TCP forwarder with scriptable faults.

    Each accepted client connection gets its own upstream socket and a
    pump thread per direction.  Faults are applied at the byte level,
    below the framing, exactly where real networks fail:

    - ``delay`` -- seconds to sleep before forwarding each chunk;
    - ``truncate_downstream(n)`` -- one-shot: after ``n`` more bytes
      of server->client traffic, sever the connection mid-stream;
    - ``partition()`` / ``heal()`` -- refuse new connections and sever
      live ones until healed;
    - ``sever()`` -- drop every live connection once.
    """

    def __init__(self, target: str):
        self._target = parse_address(target)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self.address = "127.0.0.1:%d" % self._listener.getsockname()[1]
        self.delay = 0.0
        self._truncate_left: int | None = None
        self._partitioned = False
        self._closed = False
        self._lock = threading.Lock()
        self._pairs: list[tuple[socket.socket, socket.socket]] = []
        threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True
        ).start()

    # -- fault controls -------------------------------------------------

    def truncate_downstream(self, budget: int) -> None:
        with self._lock:
            self._truncate_left = budget

    def partition(self) -> None:
        with self._lock:
            self._partitioned = True
        self.sever()

    def heal(self) -> None:
        with self._lock:
            self._partitioned = False

    def sever(self) -> None:
        with self._lock:
            pairs, self._pairs = self._pairs, []
        for pair in pairs:
            self._drop(pair)

    def close(self) -> None:
        with self._lock:
            self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        self.sever()

    # -- plumbing -------------------------------------------------------

    @staticmethod
    def _drop(pair) -> None:
        for sock in pair:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def _accept_loop(self) -> None:
        while True:
            try:
                downstream, _ = self._listener.accept()
            except OSError:
                return
            with self._lock:
                refused = self._partitioned or self._closed
            if refused:
                self._drop((downstream,))
                continue
            try:
                upstream = socket.create_connection(self._target, timeout=5.0)
            except OSError:
                self._drop((downstream,))
                continue
            pair = (downstream, upstream)
            with self._lock:
                self._pairs.append(pair)
            for src, dst, toward_client in (
                (downstream, upstream, False),
                (upstream, downstream, True),
            ):
                threading.Thread(
                    target=self._pump,
                    args=(pair, src, dst, toward_client),
                    name="chaos-pump",
                    daemon=True,
                ).start()

    def _pump(self, pair, src, dst, toward_client: bool) -> None:
        try:
            while True:
                chunk = src.recv(65536)
                if not chunk:
                    break
                if self.delay:
                    time.sleep(self.delay)
                if toward_client:
                    with self._lock:
                        left = self._truncate_left
                        if left is not None:
                            if len(chunk) >= left:
                                chunk = chunk[:left]
                                self._truncate_left = None  # one-shot
                                if chunk:
                                    dst.sendall(chunk)
                                break  # sever both ways mid-frame
                            self._truncate_left = left - len(chunk)
                dst.sendall(chunk)
        except OSError:
            pass
        finally:
            with self._lock:
                if pair in self._pairs:
                    self._pairs.remove(pair)
            self._drop(pair)


def _spawn_ring_server(join=None):
    """A real ``repro serve`` process (the kill drill needs SIGKILL)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0", "--workers", "2",
    ]
    if join:
        command += ["--join", join]
    proc = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    address = None
    for _ in range(20):
        line = proc.stdout.readline().strip()
        if line.startswith("listening on "):
            address = line.removeprefix("listening on ")
            break
    if address is None:
        proc.kill()
        raise RuntimeError("server process never reported its address")
    return proc, address


class TestRingKillMidGrid:
    PROBLEM_IDS = ["cb_mux2", "cb_kmap_mux", "fs_vending", "ar_addsub8"]
    RUNS = 3
    SEED0 = 5

    def test_sigkilled_peer_resards_bit_identically(self):
        """SIGKILL the busiest ring member mid-grid: its orphaned cells
        migrate to the survivors and every result row still matches a
        local ``--jobs 1`` run bit-for-bit."""
        problems = [get_problem(p) for p in self.PROBLEM_IDS]
        with SerialExecutor() as executor:
            local, _ = evaluate_many(
                SYSTEMS["mage"].factory,
                "verilogeval-v2",
                runs=self.RUNS,
                seed0=self.SEED0,
                problems=problems,
                executor=executor,
                cache=SimulationCache(),
            )

        servers = []
        try:
            seed_proc, seed_address = _spawn_ring_server()
            servers.append((seed_proc, seed_address))
            for _ in range(2):
                servers.append(_spawn_ring_server(join=seed_address))
            members = {address for _, address in servers}
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                try:
                    views = [
                        set(fetch_peers(address, timeout=5.0))
                        for _, address in servers
                    ]
                except (ServiceError, OSError):
                    views = []
                if views and all(view >= members for view in views):
                    break
                time.sleep(0.1)
            else:
                pytest.fail("ring never converged to full membership")

            # The victim is whoever owns the most cells, so the kill
            # provably orphans work.  Placement hashes the registered
            # system name, not the CLI alias.
            from repro.service.worker import registered_system_name

            ring = HashRing(sorted(members))
            resolved = registered_system_name("mage")
            owners = Counter(
                ring.node_for(
                    ring_key(resolved, problem.id, self.SEED0 + run)
                )
                for problem in problems
                for run in range(self.RUNS)
            )
            victim_address = owners.most_common(1)[0][0]
            victim_proc = next(
                proc for proc, address in servers
                if address == victim_address
            )
            survivor = next(
                address for _, address in servers
                if address != victim_address
            )

            killed = threading.Event()

            def chaos(event):
                if isinstance(event, CellFinished) and not killed.is_set():
                    killed.set()
                    victim_proc.send_signal(signal.SIGKILL)

            result, report = solve_grid(
                "mage",
                "verilogeval-v2",
                runs=self.RUNS,
                seed0=self.SEED0,
                problems=problems,
                shards=[survivor],
                ring=True,
                events=chaos,
            )
        finally:
            for proc, _ in servers:
                proc.kill()
                proc.wait(timeout=10)

        assert killed.is_set()
        assert result.outcomes == local.outcomes
        assert report.dead_shards == [victim_address]
        assert report.migrated_cells >= 1
        assert report.cells == len(problems) * self.RUNS


class TestGossipPartition:
    def test_backlog_drains_after_partition_heals(self):
        """Puts issued during a partition queue in the write-behind
        backlog (the solve path never blocks on them) and every one of
        them reaches the peer once the partition heals."""
        records = {
            f"cell-{index}": SolveCellRecord(
                source=f"module m{index}; endmodule", system="s"
            )
            for index in range(8)
        }
        with SolveServer(workers=1) as server:
            proxy = ChaosProxy(server.address)
            cache = SolveCellCache(
                peers=(proxy.address,), write_behind=True
            )
            try:
                # Tighten the recovery knobs so the drill stays quick.
                tier = next(
                    t for t in cache.tiers if t.kind == "remote"
                )
                tier.connect_timeout = 0.5
                tier.down_cooldown = 0.5
                cache._gossip.retry_interval = 0.1

                proxy.partition()
                started = time.monotonic()
                for key, record in records.items():
                    cache.put(key, record)
                # Write-behind contract: enqueueing eight puts against
                # a dead peer costs microseconds, not connect timeouts.
                assert time.monotonic() - started < 1.0
                assert not cache.flush_gossip(timeout=1.5)
                report = cache.gossip_report()
                assert report["enqueued"] == len(records)
                assert report["delivered"] < len(records)

                proxy.heal()
                assert cache.flush_gossip(timeout=30.0)
                report = cache.gossip_report()
                assert report["delivered"] == len(records)
                assert report["backlog"] == 0
                assert report["retried"] >= 1  # the partition was real
                for key, record in records.items():
                    assert server.solve_cache.peek_local(key) == record
            finally:
                cache.close()
                proxy.close()


class TestHalfWrittenFrame:
    def test_mux_client_sees_a_typed_severing(self):
        """A reply cut mid-frame surfaces as a ServiceError naming the
        severed transport -- never a hang or a partial frame."""
        with SolveServer(workers=1) as server:
            proxy = ChaosProxy(server.address)
            try:
                proxy.truncate_downstream(2)  # mid-header of reply one
                client = MultiplexedClient(proxy.address, timeout=30.0)
                with pytest.raises(ServiceError) as caught:
                    client.solve("mage", "cb_mux2", seed=0)
                assert "severed" in str(caught.value) or "closed" in str(
                    caught.value
                )
                client.close()
            finally:
                proxy.close()

    def test_grid_retries_on_a_fresh_connection(self):
        """solve_grid absorbs a one-shot mid-frame truncation: the cell
        retries on a new connection and the row matches an unproxied
        solve exactly."""
        with SolveServer(workers=1) as server:
            with ServiceClient(server.address) as direct:
                expected = direct.solve("mage", "cb_kmap_mux", seed=1)
            proxy = ChaosProxy(server.address)
            try:
                proxy.truncate_downstream(2)
                result, report = solve_grid(
                    "mage",
                    "verilogeval-v2",
                    runs=1,
                    seed0=1,
                    problems=[get_problem("cb_kmap_mux")],
                    shards=[proxy.address],
                )
            finally:
                proxy.close()
        assert report.retried_cells == 1
        assert report.dead_shards == []
        (outcome,) = result.outcomes
        assert outcome.passes == int(expected.passed)
        assert outcome.scores == [expected.score]

    def test_latency_is_survivable(self):
        """Added per-chunk latency slows the grid but changes nothing."""
        with SolveServer(workers=1) as server:
            proxy = ChaosProxy(server.address)
            try:
                proxy.delay = 0.02
                result, report = solve_grid(
                    "mage",
                    "verilogeval-v2",
                    runs=1,
                    seed0=0,
                    problems=[get_problem("cb_mux2")],
                    shards=[proxy.address],
                )
            finally:
                proxy.close()
        assert report.cells == 1
        assert report.retried_cells == 0
        (outcome,) = result.outcomes
        assert outcome.runs == 1
