"""Codec fuzz: hostile bytes can produce a frame, a clean EOF, or a
typed :class:`ProtocolError` -- never a hang, a partial frame, or a
foreign exception.

Complements ``test_protocol_properties`` (fragmentation/coalescing
sweeps) on the adversarial axes: garbage headers, oversized length
prefixes, truncated payloads, single-byte corruption, and version
skew.  Runs under hypothesis when it is installed (the dev image has
it; ``derandomize=True`` keeps examples reproducible), and falls back
to a seeded-random sweep with the identical checks where it is not
(CI installs only numpy + pytest)."""

import io
import random
import struct

import pytest

from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    Ack,
    ControlRequest,
    ErrorFrame,
    PeerGone,
    ProtocolError,
    SolveRequest,
    decode_payload_versioned,
    encode_frame,
    read_frame,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # CI fallback: seeded random, same checks
    HAVE_HYPOTHESIS = False

_HEADER = struct.Struct(">I")


# -- checks shared by both drivers -------------------------------------


def check_arbitrary_bytes(data: bytes) -> None:
    """Drain a hostile stream: frames, clean EOF, or ProtocolError."""
    stream = io.BytesIO(data)
    try:
        while read_frame(stream) is not None:
            pass
    except ProtocolError:
        pass  # PeerGone included: the typed rejection contract


def check_oversized_length(excess: int, body: bytes) -> None:
    """A length past the ceiling is refused before the body is read."""
    length = MAX_FRAME_BYTES + 1 + excess
    stream = io.BytesIO(_HEADER.pack(min(length, 0xFFFFFFFF)) + body)
    with pytest.raises(ProtocolError) as caught:
        read_frame(stream)
    assert "frame too large" in str(caught.value)
    assert not isinstance(caught.value, PeerGone)
    assert stream.tell() == _HEADER.size  # body bytes never consumed


def check_truncation(wire: bytes, cut: int) -> None:
    """Every mid-frame prefix raises PeerGone; zero bytes is clean EOF."""
    cut = max(0, min(cut, len(wire) - 1))
    stream = io.BytesIO(wire[:cut])
    if cut == 0:
        assert read_frame(stream) is None
        return
    with pytest.raises(PeerGone):
        read_frame(stream)


def check_corruption(wire: bytes, offset: int, value: int) -> None:
    """Flipping one payload byte parses or raises ProtocolError only."""
    offset = _HEADER.size + offset % (len(wire) - _HEADER.size)
    mutated = bytearray(wire)
    mutated[offset] = value
    stream = io.BytesIO(bytes(mutated))
    try:
        read_frame(stream)
    except ProtocolError:
        pass
    # Either way the full frame was consumed: no partial reads linger.
    assert stream.tell() == len(wire)


def check_version_skew(version) -> None:
    """An unknown ``v`` is refused with a version-naming error."""
    wire = encode_frame(Ack(id=1))
    import json

    payload = json.loads(wire[_HEADER.size:])
    payload["v"] = version
    body = json.dumps(payload).encode()
    stream = io.BytesIO(_HEADER.pack(len(body)) + body)
    with pytest.raises(ProtocolError) as caught:
        read_frame(stream)
    assert "version" in str(caught.value)


def check_round_trip(message: str, version: int) -> None:
    """Every supported dialect round-trips frames losslessly."""
    for frame in (
        Ack(id=7, cached=True),
        ErrorFrame(id=7, message=message),
        ControlRequest(id=9, op="ping"),
        SolveRequest(id=3, system=message or "mage", problem="p", seed=4),
    ):
        wire = encode_frame(frame, version=version)
        (length,) = _HEADER.unpack(wire[:_HEADER.size])
        assert length == len(wire) - _HEADER.size
        decoded, spoken = decode_payload_versioned(wire[_HEADER.size:])
        assert spoken == version
        assert type(decoded) is type(frame)
        assert decoded == frame


def _sample_wire() -> bytes:
    return encode_frame(
        SolveRequest(id=11, system="mage", problem="cb_mux2", seed=2)
    )


# Only an exact (non-bool) int in SUPPORTED_VERSIONS is a version:
# JSON-representable lookalikes (floats, bools, strings, containers)
# must all be refused, typed, without crashing the decoder.
SKEW_VALUES = [0, 4, 99, -1, None, True, "3", "two", 2.5, 3.0, [3], {"v": 3}]


# -- drivers -----------------------------------------------------------

if HAVE_HYPOTHESIS:
    common = settings(max_examples=150, deadline=None, derandomize=True)

    @common
    @given(data=st.binary(max_size=300))
    def test_arbitrary_bytes_never_hang_or_leak(data):
        check_arbitrary_bytes(data)

    @common
    @given(
        excess=st.integers(min_value=0, max_value=2**31),
        body=st.binary(max_size=64),
    )
    def test_oversized_lengths_are_refused_unread(excess, body):
        check_oversized_length(excess, body)

    @common
    @given(cut=st.integers(min_value=0, max_value=4096))
    def test_every_truncation_point_is_peer_gone(cut):
        check_truncation(_sample_wire(), cut)

    @common
    @given(
        offset=st.integers(min_value=0, max_value=4096),
        value=st.integers(min_value=0, max_value=255),
    )
    def test_single_byte_corruption_stays_typed(offset, value):
        check_corruption(_sample_wire(), offset, value)

    @common
    @given(
        message=st.text(max_size=40),
        version=st.sampled_from(sorted(SUPPORTED_VERSIONS)),
    )
    def test_supported_dialects_round_trip(message, version):
        check_round_trip(message, version)

else:

    @pytest.mark.parametrize("seed", range(25))
    def test_arbitrary_bytes_never_hang_or_leak(seed):
        rng = random.Random(0xFA00 + seed)
        for _ in range(12):
            check_arbitrary_bytes(rng.randbytes(rng.randint(0, 300)))

    @pytest.mark.parametrize("seed", range(10))
    def test_oversized_lengths_are_refused_unread(seed):
        rng = random.Random(0xFB00 + seed)
        check_oversized_length(
            rng.randint(0, 2**31), rng.randbytes(rng.randint(0, 64))
        )

    def test_every_truncation_point_is_peer_gone():
        wire = _sample_wire()
        for cut in range(len(wire)):
            check_truncation(wire, cut)

    @pytest.mark.parametrize("seed", range(10))
    def test_single_byte_corruption_stays_typed(seed):
        rng = random.Random(0xFC00 + seed)
        wire = _sample_wire()
        for _ in range(20):
            check_corruption(wire, rng.randint(0, 4096), rng.randint(0, 255))

    def test_supported_dialects_round_trip():
        rng = random.Random(0xFD00)
        for version in sorted(SUPPORTED_VERSIONS):
            for _ in range(5):
                message = "".join(
                    rng.choice("abc \"\\{}\u00e9") for _ in range(rng.randint(0, 40))
                )
                check_round_trip(message, version)


def test_version_skew_is_refused():
    for value in SKEW_VALUES:
        check_version_skew(value)


def test_current_version_is_supported():
    assert PROTOCOL_VERSION in SUPPORTED_VERSIONS
