"""Consistent-hash ring unit tests: placement is a pure function of
(key, membership), joins and leaves move only the keyspace they must,
and the failover preference order is the same on every machine -- the
properties ``solve_grid`` re-sharding and ``RemoteTier`` placement
lean on."""

import random

import pytest

from repro.service.ring import HashRing, PeerDirectory, ring_key

MEMBERS = [f"10.0.0.{n}:7341" for n in range(1, 6)]
KEYS = [
    ring_key("mage", f"problem_{index}", seed)
    for index in range(60)
    for seed in range(3)
]


def placement(ring: HashRing) -> dict:
    return {key: ring.node_for(key) for key in KEYS}


class TestPlacementStability:
    def test_build_order_never_matters(self):
        shuffled = list(MEMBERS)
        random.Random(7).shuffle(shuffled)
        forward = HashRing(MEMBERS)
        backward = HashRing(reversed(MEMBERS))
        scrambled = HashRing(shuffled)
        assert forward.nodes == backward.nodes == scrambled.nodes
        assert placement(forward) == placement(backward)
        assert placement(forward) == placement(scrambled)

    def test_two_instances_agree_without_coordination(self):
        # What lets every client re-shard independently: separate ring
        # objects over the same membership give identical answers.
        assert placement(HashRing(MEMBERS)) == placement(HashRing(MEMBERS))

    def test_incremental_add_equals_rebuild(self):
        grown = HashRing(MEMBERS[:-1])
        grown.add(MEMBERS[-1])
        assert placement(grown) == placement(HashRing(MEMBERS))

    def test_incremental_remove_equals_rebuild(self):
        shrunk = HashRing(MEMBERS)
        shrunk.remove(MEMBERS[2])
        rebuilt = HashRing(MEMBERS[:2] + MEMBERS[3:])
        assert placement(shrunk) == placement(rebuilt)

    def test_every_member_owns_some_keyspace(self):
        owners = set(placement(HashRing(MEMBERS)).values())
        assert owners == set(MEMBERS)  # 64 vnodes spread 180 keys

    def test_empty_and_single_member_rings(self):
        empty = HashRing()
        assert empty.node_for("anything") is None
        assert empty.preference("anything") == []
        solo = HashRing([MEMBERS[0]])
        assert all(owner == MEMBERS[0] for owner in placement(solo).values())

    def test_membership_bookkeeping(self):
        ring = HashRing(MEMBERS)
        assert len(ring) == len(MEMBERS)
        assert MEMBERS[0] in ring and "10.9.9.9:1" not in ring
        assert not ring.add(MEMBERS[0])  # already present
        assert not ring.remove("10.9.9.9:1")  # never present
        assert ring.remove(MEMBERS[0]) and MEMBERS[0] not in ring

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)


class TestMinimalMovement:
    def test_join_moves_keys_only_to_the_joiner(self):
        before = placement(HashRing(MEMBERS))
        joiner = "10.0.0.99:7341"
        after = placement(HashRing(MEMBERS + [joiner]))
        moved = {key for key in KEYS if before[key] != after[key]}
        assert moved  # the joiner takes over a share
        assert all(after[key] == joiner for key in moved)
        # Consistency bound: ~1/n of the keyspace, never a reshuffle.
        assert len(moved) < len(KEYS) // 2

    def test_leave_moves_only_the_leavers_keys(self):
        before = placement(HashRing(MEMBERS))
        leaver = MEMBERS[1]
        survivors = HashRing([m for m in MEMBERS if m != leaver])
        after = placement(survivors)
        for key in KEYS:
            if before[key] == leaver:
                assert after[key] != leaver
            else:
                assert after[key] == before[key]

    def test_orphans_land_on_the_failover_successor(self):
        # The re-shard rule solve_grid applies when a shard dies: each
        # orphaned key goes to the next distinct member in preference
        # order, which is exactly where a ring without the dead member
        # places it.
        full = HashRing(MEMBERS)
        victim = MEMBERS[3]
        shrunk = HashRing([m for m in MEMBERS if m != victim])
        for key in KEYS:
            if full.node_for(key) != victim:
                continue
            order = full.preference(key)
            successor = next(m for m in order if m != victim)
            assert shrunk.node_for(key) == successor


class TestPreferenceOrder:
    def test_owner_first_each_member_once(self):
        ring = HashRing(MEMBERS)
        for key in KEYS[:30]:
            order = ring.preference(key)
            assert order[0] == ring.node_for(key)
            assert sorted(order) == sorted(MEMBERS)

    def test_preference_is_machine_independent(self):
        first, second = HashRing(MEMBERS), HashRing(reversed(MEMBERS))
        for key in KEYS[:30]:
            assert first.preference(key) == second.preference(key)


class TestRingKey:
    def test_pure_function_of_cell_identity(self):
        assert ring_key("mage", "cb_mux2", 3) == "mage/cb_mux2/3"
        assert ring_key("mage", "cb_mux2", 3) == ring_key("mage", "cb_mux2", 3)
        assert ring_key("mage", "cb_mux2", 3) != ring_key("mage", "cb_mux2", 4)
        assert ring_key("mage", "cb_mux2", 3) != ring_key("aivril", "cb_mux2", 3)


class TestPeerDirectory:
    def test_always_contains_self(self):
        directory = PeerDirectory("10.0.0.1:7341")
        assert directory.members() == ("10.0.0.1:7341",)
        assert directory.others() == ()
        assert not directory.remove("10.0.0.1:7341")
        assert "10.0.0.1:7341" in directory

    def test_add_reports_only_fresh_members(self):
        directory = PeerDirectory("a:1")
        assert directory.add(["b:1", "c:1", ""]) == ("b:1", "c:1")
        assert directory.add(["b:1", "a:1"]) == ()  # all known already
        assert directory.members() == ("a:1", "b:1", "c:1")
        assert directory.others() == ("b:1", "c:1")

    def test_on_change_fires_only_on_real_churn(self):
        changes = []
        directory = PeerDirectory("a:1", on_change=changes.append)
        directory.add(["b:1"])
        directory.add(["b:1"])  # no-op: no callback
        directory.remove("b:1")
        directory.remove("b:1")  # already gone: no callback
        assert changes == [("a:1", "b:1"), ("a:1",)]

    def test_ring_view_tracks_membership(self):
        directory = PeerDirectory("a:1")
        directory.add(["b:1", "c:1"])
        assert directory.ring().nodes == ("a:1", "b:1", "c:1")
