"""Sharded grids: ≥2 real server processes, bit-identical merge."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.baselines.registry import SYSTEMS
from repro.core.events import ListSink
from repro.evalsets import get_problem
from repro.runtime import SerialExecutor, evaluate_many
from repro.service import ServiceError, solve_grid, stop_server

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])
PROBLEMS = ["cb_mux2", "cb_kmap_mux", "fs_seq_det_110"]


def _spawn_server():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--workers", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("listening on "):
        proc.kill()
        raise RuntimeError(f"server failed to start: {line!r}")
    return proc, line.removeprefix("listening on ")


@pytest.fixture(scope="module")
def two_servers():
    started = []
    try:
        for _ in range(2):
            started.append(_spawn_server())
        yield [address for _, address in started]
    finally:
        for proc, address in started:
            try:
                stop_server(address)
            except (OSError, ServiceError, ValueError):
                pass
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()


class TestShardedGrid:
    def test_two_process_grid_is_bit_identical_to_local_serial(
        self, two_servers
    ):
        """The acceptance contract: a grid sharded over two server
        *processes* merges to exactly the local --jobs 1 result."""
        problems = [get_problem(p) for p in PROBLEMS]
        sharded, report = solve_grid(
            "mage",
            "verilogeval-v2",
            runs=2,
            seed0=0,
            problems=problems,
            shards=two_servers,
        )
        with SerialExecutor() as executor:
            local, _ = evaluate_many(
                SYSTEMS["mage"].factory,
                "verilogeval-v2",
                runs=2,
                seed0=0,
                problems=problems,
                executor=executor,
            )
        assert sharded.system == local.system
        assert sharded.suite == local.suite
        assert sharded.outcomes == local.outcomes  # scores bit-identical
        # Both shards actually served cells (round-robin by grid index).
        assert len(report.shard_cells) == 2
        assert all(count > 0 for count in report.shard_cells.values())
        assert report.cells == len(problems) * 2

    def test_repeat_grid_is_cache_served_and_identical(self, two_servers):
        problems = [get_problem(p) for p in PROBLEMS]
        first, _ = solve_grid(
            "mage",
            "verilogeval-v2",
            runs=2,
            seed0=0,
            problems=problems,
            shards=two_servers,
        )
        again, report = solve_grid(
            "mage",
            "verilogeval-v2",
            runs=2,
            seed0=0,
            problems=problems,
            shards=two_servers,
        )
        assert again.outcomes == first.outcomes
        assert report.cached_cells == report.cells  # all warm

    def test_grid_streams_cell_events(self, two_servers):
        problems = [get_problem(p) for p in PROBLEMS[:2]]
        sink = ListSink()
        progress = []
        solve_grid(
            "mage",
            "verilogeval-v2",
            runs=1,
            seed0=0,
            problems=problems,
            shards=two_servers,
            events=sink,
            progress=progress.append,
        )
        cells = [e for e in sink.events if e.kind == "cell-finished"]
        assert {e.problem_id for e in cells} == {p.id for p in problems}
        assert sink.events[-1].kind == "batch-finished"
        # Progress lines arrive in suite order, one per problem.
        assert len(progress) == 2
        assert problems[0].id in progress[0]
        assert problems[1].id in progress[1]

    def test_single_shard_seed0_changes_results_key(self, two_servers):
        """seed0 is honoured on the wire: different base seed, different
        solve-cell identity (no false cache hits across seeds)."""
        problems = [get_problem(PROBLEMS[0])]
        _, first = solve_grid(
            "mage",
            "verilogeval-v2",
            runs=1,
            seed0=40,
            problems=problems,
            shards=two_servers[:1],
        )
        _, second = solve_grid(
            "mage",
            "verilogeval-v2",
            runs=1,
            seed0=41,
            problems=problems,
            shards=two_servers[:1],
        )
        assert first.cached_cells == 0
        assert second.cached_cells == 0

    def test_bad_shard_list_raises(self):
        with pytest.raises(ValueError):
            solve_grid("mage", "verilogeval-v2", shards=[])
        with pytest.raises(ValueError):
            solve_grid(
                "mage",
                "verilogeval-v2",
                shards=["not-an-address"],
                problems=[get_problem("cb_mux2")],
            )
