"""Executor backends: ordering, submit semantics, selection."""

import operator

import pytest

from repro.runtime.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    create_executor,
)


def square(x):
    return x * x


def boom(_x):
    raise ValueError("boom")


class TestOrdering:
    @pytest.mark.parametrize(
        "make",
        [SerialExecutor, lambda: ThreadExecutor(4), lambda: ProcessExecutor(2)],
        ids=["serial", "thread", "process"],
    )
    def test_map_preserves_input_order(self, make):
        with make() as executor:
            assert executor.map(square, range(20)) == [i * i for i in range(20)]

    def test_thread_order_independent_of_completion(self):
        import time

        def slow_first(x):
            time.sleep(0.05 if x == 0 else 0.0)
            return x

        with ThreadExecutor(4) as executor:
            assert executor.map(slow_first, range(8)) == list(range(8))

    def test_map_empty(self):
        with ThreadExecutor(2) as executor:
            assert executor.map(square, []) == []


class TestSubmit:
    def test_serial_submit_future(self):
        future = SerialExecutor().submit(square, 7)
        assert future.result() == 49

    def test_serial_submit_exception(self):
        future = SerialExecutor().submit(boom, 1)
        with pytest.raises(ValueError):
            future.result()

    def test_thread_submit(self):
        with ThreadExecutor(2) as executor:
            assert executor.submit(operator.add, 2, 3).result() == 5


class TestProcessFallback:
    def test_closure_downgrades_to_threads(self):
        captured = 10
        with ProcessExecutor(2) as executor:
            results = executor.map(lambda x: x + captured, range(4))
            assert results == [10, 11, 12, 13]
            assert executor.fallbacks == 1

    def test_picklable_work_uses_processes(self):
        with ProcessExecutor(2) as executor:
            assert executor.map(square, range(4)) == [0, 1, 4, 9]
            assert executor.fallbacks == 0


class TestCreateExecutor:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert create_executor().kind == "serial"

    def test_jobs_selects_threads(self):
        executor = create_executor(jobs=3)
        try:
            assert executor.kind == "thread"
            assert executor.workers == 3
        finally:
            executor.shutdown()

    def test_env_jobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        executor = create_executor()
        try:
            assert executor.kind == "thread"
            assert executor.workers == 2
        finally:
            executor.shutdown()

    def test_explicit_kind(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        executor = create_executor(jobs=2)
        try:
            assert executor.kind == "process"
        finally:
            executor.shutdown()

    def test_serial_kind_wins_over_jobs(self):
        assert create_executor(jobs=8, kind="serial").kind == "serial"

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            create_executor(jobs=2, kind="quantum")
