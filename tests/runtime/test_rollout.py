"""RolloutScheduler unit behaviour: waves, caching, errors, fallbacks."""

import pytest

from repro.baselines.registry import SYSTEMS
from repro.core.events import (
    CellFinished,
    ListSink,
    SpeculationOutcome,
    WaveScheduled,
)
from repro.core.task import DesignTask
from repro.evalsets import get_problem, golden_testbench
from repro.runtime.batch import evaluate_many
from repro.runtime.cache import (
    SimulationCache,
    SolveCellCache,
    system_fingerprint,
)
from repro.runtime.executor import SerialExecutor, ThreadExecutor
from repro.runtime.rollout import (
    RolloutRequest,
    RolloutScheduler,
    ScoreTask,
    rollout_score,
)


def _request(index, problem_id, seed=0, factory=None, **kwargs):
    problem = get_problem(problem_id)
    return RolloutRequest(
        index=index,
        factory=factory if factory is not None else SYSTEMS["mage"].factory,
        problem=problem,
        golden_tb=golden_testbench(problem),
        seed=seed,
        **kwargs,
    )


class _LegacySystem:
    """A pre-program system: ``solve`` only, no ``start_run``."""

    name = "legacy"

    def solve(self, task, seed=0):
        return (
            f"module {task.top}(input a, output y);\n"
            "  assign y = a;\nendmodule\n"
        )


class _BoomSystem:
    name = "boom"

    def start_run(self, task, seed=0):
        raise RuntimeError("kaboom")

    def solve(self, task, seed=0):
        raise RuntimeError("kaboom")


class TestScheduler:
    def test_batch_width_does_not_change_results(self):
        ids = ["cb_mux2", "cb_kmap_mux", "fs_vending"]
        outs = []
        for batch in (1, 2, 8):
            requests = [_request(i, pid, seed=1) for i, pid in enumerate(ids)]
            scheduler = RolloutScheduler(
                executor=SerialExecutor(), batch=batch, cache=SimulationCache()
            )
            outs.append(
                [(r.source, r.passed, r.score) for r in scheduler.run(requests)]
            )
        assert outs[0] == outs[1] == outs[2]

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            RolloutScheduler(batch=0)

    def test_solve_cache_serves_warm_repeat_with_same_events(self):
        fingerprint = system_fingerprint(SYSTEMS["mage"].factory)
        solve_cache = SolveCellCache()
        scheduler = RolloutScheduler(
            executor=SerialExecutor(),
            cache=SimulationCache(),
            solve_cache=solve_cache,
        )
        cold_sink, warm_sink = ListSink(), ListSink()
        cold = scheduler.run(
            [_request(0, "fs_vending", 2, sink=cold_sink, fingerprint=fingerprint)]
        )[0]
        warm = scheduler.run(
            [_request(0, "fs_vending", 2, sink=warm_sink, fingerprint=fingerprint)]
        )[0]
        assert not cold.solve_cached and warm.solve_cached
        assert warm.source == cold.source
        assert warm_sink.events == cold_sink.events  # replayed verbatim
        assert solve_cache.stats.hits == 1 and solve_cache.stats.misses == 1

    def test_legacy_system_without_start_run_still_evaluates(self):
        request = _request(0, "cb_mux2", factory=_LegacySystem)
        result = RolloutScheduler(executor=SerialExecutor()).run([request])[0]
        assert result.error is None
        assert result.system == "legacy"
        assert result.source.startswith("module")

    def test_one_failing_run_does_not_poison_the_wave(self):
        requests = [
            _request(0, "cb_mux2", seed=0),
            _request(1, "cb_kmap_mux", factory=_BoomSystem),
            _request(2, "fs_vending", seed=2),
        ]
        scheduler = RolloutScheduler(
            executor=ThreadExecutor(2), cache=SimulationCache()
        )
        results = scheduler.run(requests)
        assert results[0].error is None and results[0].passed is not None
        assert results[1].error is not None and "kaboom" in results[1].error
        assert results[2].error is None and results[2].source

    def test_results_return_in_request_order(self):
        ids = ["fs_vending", "cb_mux2", "sq_counter_ud", "cb_kmap_mux"]
        requests = [_request(i, pid, seed=1) for i, pid in enumerate(ids)]
        scheduler = RolloutScheduler(
            executor=ThreadExecutor(4), batch=2, cache=SimulationCache()
        )
        results = scheduler.run(requests)
        assert [r.index for r in results] == [0, 1, 2, 3]
        assert [r.problem_id for r in results] == ids


class TestAdaptiveScheduling:
    IDS = ["cb_mux2", "cb_kmap_mux", "fs_vending", "ar_addsub8"]

    def _run(self, batch, speculate=None, sink=None):
        requests = [
            _request(i, pid, seed=1) for i, pid in enumerate(self.IDS)
        ]
        scheduler = RolloutScheduler(
            executor=SerialExecutor(),
            batch=batch,
            cache=SimulationCache(),
            speculate=speculate,
            events=sink,
        )
        results = scheduler.run(requests)
        return [(r.source, r.passed, r.score) for r in results], scheduler

    def test_auto_width_matches_fixed_width_results(self):
        fixed, _ = self._run(batch=2)
        auto, scheduler = self._run(batch="auto")
        assert auto == fixed
        assert scheduler.adaptive
        # The planner actually sized the waves that ran.
        assert scheduler.planner is not None
        assert scheduler.planner.widths

    def test_dedup_invariant_holds_under_dynamic_widths(self):
        """submitted == executed + wave_duplicates + fabric_hits, for
        any wave sizing the planner picks."""
        for batch in (1, 3, "auto"):
            _, scheduler = self._run(batch=batch)
            dedup = scheduler.dedup
            assert dedup.submitted > 0
            assert dedup.submitted == (
                dedup.executed + dedup.wave_duplicates + dedup.fabric_hits
            )
            assert dedup.deduped == (
                dedup.wave_duplicates + dedup.fabric_hits
            )

    def test_wave_scheduled_emitted_to_batch_sink_only(self):
        sink = ListSink()
        run_sinks = [ListSink() for _ in self.IDS]
        requests = [
            _request(i, pid, seed=1, sink=run_sink)
            for i, (pid, run_sink) in enumerate(zip(self.IDS, run_sinks))
        ]
        scheduler = RolloutScheduler(
            executor=SerialExecutor(),
            batch="auto",
            cache=SimulationCache(),
            events=sink,
        )
        scheduler.run(requests)
        waves = [e for e in sink.events if isinstance(e, WaveScheduled)]
        assert waves and all(w.adaptive for w in waves)
        phases = {w.phase for w in waves}
        assert "open" in phases and "score" in phases
        assert all(w.width >= 1 and w.items >= 1 for w in waves)
        # Batch-level telemetry never leaks into per-run streams.
        for run_sink in run_sinks:
            assert not any(
                isinstance(e, (WaveScheduled, SpeculationOutcome))
                for e in run_sink.events
            )


class TestSpeculation:
    IDS = ["cb_mux2", "ar_addsub8", "fs_vending"]

    def _run(self, speculate):
        requests = []
        sinks = []
        for index, pid in enumerate(self.IDS):
            sink = ListSink()
            sinks.append(sink)
            requests.append(_request(index, pid, seed=0, sink=sink))
        batch_sink = ListSink()
        scheduler = RolloutScheduler(
            executor=ThreadExecutor(2),
            batch=4,
            cache=SimulationCache(),
            speculate=speculate,
            events=batch_sink,
        )
        results = scheduler.run(requests)
        rows = [(r.source, r.passed, r.score) for r in results]
        streams = [[e.to_json() for e in s.events] for s in sinks]
        for stream in streams:
            for payload in stream:
                if "seconds" in payload:
                    payload["seconds"] = 0.0
        return rows, streams, scheduler, batch_sink

    def test_speculation_only_warms_caches(self):
        """Event streams and results are identical with speculation on
        or off: speculative simulations may warm the sim cache, never
        alter what a run observes."""
        rows_off, streams_off, off, _ = self._run(speculate=False)
        rows_on, streams_on, on, _ = self._run(speculate=True)
        assert rows_on == rows_off
        assert streams_on == streams_off
        assert off.speculation.launched == 0
        assert on.speculation.launched > 0

    def test_speculation_accounting(self):
        _, _, scheduler, batch_sink = self._run(speculate=True)
        spec = scheduler.speculation
        assert spec.launched == spec.used + spec.mispredicted
        assert spec.used > 0  # golden predictions do win on these ids
        outcomes = [
            e for e in batch_sink.events if isinstance(e, SpeculationOutcome)
        ]
        assert len(outcomes) == 1
        assert outcomes[0].launched == spec.launched
        assert outcomes[0].used == spec.used
        assert outcomes[0].mispredicted == spec.mispredicted

    def test_serial_executor_disables_speculation(self):
        """With no second worker there is nothing to overlap with, so
        no speculative work is launched even when asked for."""
        requests = [_request(0, "cb_mux2", seed=0)]
        scheduler = RolloutScheduler(
            executor=SerialExecutor(),
            batch="auto",
            cache=SimulationCache(),
            speculate=True,
        )
        scheduler.run(requests)
        assert scheduler.speculation.launched == 0


class TestScoreWaveDedup:
    def test_identical_candidates_simulate_once(self):
        problem = get_problem("cb_mux2")
        golden = golden_testbench(problem)
        source = (
            f"module {problem.top}(input a, b, sel, output y);\n"
            "  assign y = sel ? b : a;\nendmodule\n"
        )
        cache = SimulationCache()
        scheduler = RolloutScheduler(
            executor=SerialExecutor(), cache=cache
        )
        tasks = [
            ScoreTask(source, golden, problem.top, True, None)
            for _ in range(5)
        ]
        outcomes = scheduler._score_wave(tasks)
        assert len(outcomes) == 5
        scores = {o.report.score for o in outcomes}
        assert len(scores) == 1
        # One simulation executed; the duplicates reused its report.
        executed = sum(o.counters.simulations for o in outcomes)
        assert executed == 1

    def test_score_task_matches_direct_simulation(self):
        problem = get_problem("cb_mux2")
        golden = golden_testbench(problem)
        source = (
            f"module {problem.top}(input a, b, sel, output y);\n"
            "  assign y = sel ? b : a;\nendmodule\n"
        )
        outcome = rollout_score(
            ScoreTask(source, golden, problem.top, True, None),
            SimulationCache(),
        )
        from repro.tb.runner import run_testbench

        direct = run_testbench(source, golden, problem.top)
        assert outcome.report.score == direct.score
        assert outcome.report.passed == direct.passed


class TestEvaluateManyRollout:
    def test_streams_cell_finished_events(self):
        problems = [get_problem("cb_mux2"), get_problem("cb_kmap_mux")]
        sink = ListSink()
        with ThreadExecutor(2) as executor:
            result, report = evaluate_many(
                SYSTEMS["mage"].factory,
                "verilogeval-v2",
                runs=2,
                problems=problems,
                executor=executor,
                cache=SimulationCache(),
                events=sink,
                rollout_batch=4,
            )
        cells = [e for e in sink.events if isinstance(e, CellFinished)]
        assert len(cells) == 4
        assert report.cells == 4
        assert sink.events[-1].kind == "batch-finished"

    def test_progress_lines_match_serial_path(self):
        problems = [get_problem("cb_mux2"), get_problem("cb_kmap_mux")]
        lines = {}
        for batch in (0, 4):
            captured = []
            with SerialExecutor() as executor:
                evaluate_many(
                    SYSTEMS["mage"].factory,
                    "verilogeval-v2",
                    runs=2,
                    problems=problems,
                    executor=executor,
                    cache=SimulationCache(),
                    progress=captured.append,
                    rollout_batch=batch,
                )
            lines[batch] = captured
        assert lines[0] == lines[4]

    def test_rollout_cell_failure_raises(self):
        with pytest.raises(RuntimeError, match="kaboom"):
            with SerialExecutor() as executor:
                evaluate_many(
                    _BoomSystem,
                    "verilogeval-v2",
                    runs=1,
                    problems=[get_problem("cb_mux2")],
                    executor=executor,
                    name="boom",
                    rollout_batch=2,
                )
