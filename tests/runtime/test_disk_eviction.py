"""Disk-tier bounds: size-capped LRU eviction (by mtime, counted gets
refresh recency), TTL expiry on read, and the env-var defaults that
bound every disk tier in the fabric -- cassettes included."""

import os
import pickle
import time

from repro.runtime.cache import DiskTier, SimulationCache

PAYLOAD = "x" * 64
ENTRY_BYTES = len(pickle.dumps(PAYLOAD, protocol=pickle.HIGHEST_PROTOCOL))


def backdate(tier: DiskTier, key: str, seconds: float) -> None:
    """Shift one entry's mtime ``seconds`` into the past."""
    path = os.path.join(tier.directory, f"{key}.pkl")
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


class TestSizeBound:
    def test_put_evicts_the_least_recent_entry_past_the_cap(self, tmp_path):
        tier = DiskTier(str(tmp_path / "c"), max_bytes=2 * ENTRY_BYTES)
        tier.put("a", PAYLOAD)
        backdate(tier, "a", 300)
        tier.put("b", PAYLOAD)
        backdate(tier, "b", 200)
        tier.put("c", PAYLOAD)  # over the cap: "a" (oldest) must go
        assert tier.peek("a") is None
        assert tier.peek("b") == PAYLOAD
        assert tier.peek("c") == PAYLOAD
        assert tier.stats.evictions == 1

    def test_fresh_entry_is_never_the_victim(self, tmp_path):
        # A cap smaller than one entry must not turn puts into no-ops.
        tier = DiskTier(str(tmp_path / "c"), max_bytes=ENTRY_BYTES // 2)
        tier.put("a", PAYLOAD)
        assert tier.peek("a") == PAYLOAD
        assert tier.stats.evictions == 0
        backdate(tier, "a", 300)
        tier.put("b", PAYLOAD)  # evicts "a", keeps the write that ran
        assert tier.peek("a") is None
        assert tier.peek("b") == PAYLOAD
        assert tier.stats.evictions == 1

    def test_counted_hit_refreshes_recency(self, tmp_path):
        tier = DiskTier(str(tmp_path / "c"), max_bytes=2 * ENTRY_BYTES)
        tier.put("a", PAYLOAD)
        backdate(tier, "a", 300)
        tier.put("b", PAYLOAD)
        backdate(tier, "b", 200)
        assert tier.get("a") == PAYLOAD  # touch: "a" becomes most-recent
        tier.put("c", PAYLOAD)  # now "b" is the LRU victim
        assert tier.peek("a") == PAYLOAD
        assert tier.peek("b") is None
        assert tier.peek("c") == PAYLOAD

    def test_peek_does_not_refresh_recency(self, tmp_path):
        tier = DiskTier(str(tmp_path / "c"), max_bytes=2 * ENTRY_BYTES)
        tier.put("a", PAYLOAD)
        backdate(tier, "a", 300)
        tier.put("b", PAYLOAD)
        backdate(tier, "b", 200)
        assert tier.peek("a") == PAYLOAD  # NOT a touch
        tier.put("c", PAYLOAD)  # "a" stayed oldest and is evicted
        assert tier.peek("a") is None
        assert tier.peek("b") == PAYLOAD

    def test_unbounded_tier_never_evicts(self, tmp_path):
        tier = DiskTier(str(tmp_path / "c"), max_bytes=0)
        for index in range(20):
            tier.put(f"k{index}", PAYLOAD)
        assert tier.entry_count() == 20
        assert tier.stats.evictions == 0


class TestTTL:
    def test_expired_entry_reads_as_a_miss_and_is_removed(self, tmp_path):
        tier = DiskTier(str(tmp_path / "c"), ttl=60)
        tier.put("k", PAYLOAD)
        backdate(tier, "k", 120)
        assert tier.get("k") is None
        assert tier.stats.expired == 1
        assert tier.stats.misses == 1
        # The stale file is gone, not just skipped.
        assert tier.entry_count() == 0

    def test_fresh_entry_within_ttl_hits(self, tmp_path):
        tier = DiskTier(str(tmp_path / "c"), ttl=60)
        tier.put("k", PAYLOAD)
        backdate(tier, "k", 30)
        assert tier.get("k") == PAYLOAD
        assert tier.stats.hits == 1
        assert tier.stats.expired == 0

    def test_peek_expires_but_stays_lookup_neutral(self, tmp_path):
        tier = DiskTier(str(tmp_path / "c"), ttl=60)
        tier.put("k", PAYLOAD)
        backdate(tier, "k", 120)
        assert tier.peek("k") is None
        assert tier.stats.expired == 1
        assert tier.stats.misses == 0  # peeks never count as lookups

    def test_counted_hit_resets_the_idle_clock(self, tmp_path):
        tier = DiskTier(str(tmp_path / "c"), ttl=60)
        tier.put("k", PAYLOAD)
        backdate(tier, "k", 50)  # close to expiry
        assert tier.get("k") == PAYLOAD  # touch: idle age restarts
        path = os.path.join(tier.directory, "k.pkl")
        assert time.time() - os.stat(path).st_mtime < 5


class TestReportingAndDefaults:
    def test_counters_surface_in_tier_report_rows(self, tmp_path):
        cache = SimulationCache(str(tmp_path / "c"))
        for row in cache.tier_report():
            assert "evictions" in row
            assert "expired" in row

    def test_env_vars_bound_every_disk_tier(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DISK_MAX_BYTES", "4096")
        monkeypatch.setenv("REPRO_CACHE_DISK_TTL", "3600")
        tier = DiskTier(str(tmp_path / "c"))
        assert tier.max_bytes == 4096
        assert tier.ttl == 3600.0
        assert "cap 4096 B" in tier.describe()
        assert "ttl 3600 s" in tier.describe()

    def test_explicit_bounds_beat_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DISK_MAX_BYTES", "4096")
        monkeypatch.setenv("REPRO_CACHE_DISK_TTL", "3600")
        tier = DiskTier(str(tmp_path / "c"), max_bytes=100, ttl=5)
        assert tier.max_bytes == 100
        assert tier.ttl == 5.0

    def test_defaults_are_unbounded(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DISK_MAX_BYTES", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DISK_TTL", raising=False)
        tier = DiskTier(str(tmp_path / "c"))
        assert tier.max_bytes == 0
        assert tier.ttl == 0.0
        assert tier.describe() == f"disk ({tier.directory})"
