"""Solve-cell cache: key sensitivity, fingerprints, warm-sweep reuse."""

from functools import partial

from repro.baselines.registry import SYSTEMS
from repro.baselines.vanilla import VanillaLLM
from repro.core.config import MAGEConfig
from repro.evalsets import get_problem
from repro.llm.interface import SamplingParams
from repro.runtime import (
    SerialExecutor,
    SolveCellCache,
    SolveCellRecord,
    evaluate_many,
    solve_cell_key,
    system_fingerprint,
)

LOW = SamplingParams(temperature=0.0, top_p=0.01, n=1)
MIXED = [get_problem(p) for p in ["cb_mux2", "cb_kmap_mux", "fs_seq_det_110"]]

vanilla_factory = partial(VanillaLLM, "itertl-ft", LOW)


class TestKeySensitivity:
    """hash(config, problem, seed): every component must matter."""

    def test_deterministic(self):
        fp = system_fingerprint(SYSTEMS["mage"].factory)
        problem = MIXED[0]
        assert solve_cell_key(fp, problem, 3) == solve_cell_key(fp, problem, 3)

    def test_seed_changes_key(self):
        fp = system_fingerprint(SYSTEMS["mage"].factory)
        problem = MIXED[0]
        assert solve_cell_key(fp, problem, 0) != solve_cell_key(fp, problem, 1)

    def test_problem_changes_key(self):
        fp = system_fingerprint(SYSTEMS["mage"].factory)
        assert solve_cell_key(fp, MIXED[0], 0) != solve_cell_key(fp, MIXED[1], 0)

    def test_config_changes_key(self):
        from repro.evaluation.harness import _MageSystem

        high = system_fingerprint(
            partial(_MageSystem, MAGEConfig.high_temperature())
        )
        low = system_fingerprint(
            partial(_MageSystem, MAGEConfig.low_temperature())
        )
        assert high != low
        assert solve_cell_key(high, MIXED[0], 0) != solve_cell_key(
            low, MIXED[0], 0
        )

    def test_model_changes_fingerprint(self):
        a = system_fingerprint(partial(VanillaLLM, "gpt-4o", LOW))
        b = system_fingerprint(partial(VanillaLLM, "itertl-ft", LOW))
        assert a != b


class TestFingerprints:
    def test_all_registry_factories_fingerprint(self):
        """Every Table II row must be solve-cacheable."""
        for key, spec in SYSTEMS.items():
            assert system_fingerprint(spec.factory) is not None, key

    def test_closures_are_refused(self):
        captured = {}
        assert system_fingerprint(lambda: VanillaLLM("gpt-4o", LOW)) is None
        assert system_fingerprint(lambda: captured) is None

    def test_explicit_cache_fingerprint_wins(self):
        def factory():
            return VanillaLLM("gpt-4o", LOW)

        factory.cache_fingerprint = "my-system-v1"
        assert system_fingerprint(factory) == "my-system-v1"

    def test_fingerprints_are_address_free(self):
        """Two equal partials (fresh objects) share one fingerprint."""
        a = system_fingerprint(partial(VanillaLLM, "gpt-4o", SamplingParams()))
        b = system_fingerprint(partial(VanillaLLM, "gpt-4o", SamplingParams()))
        assert a == b


class TestWarmSweeps:
    def test_warm_pass_hits_every_cell_and_matches(self):
        cache = SolveCellCache()
        with SerialExecutor() as executor:
            cold_result, cold = evaluate_many(
                vanilla_factory,
                "verilogeval-v2",
                runs=2,
                problems=MIXED,
                executor=executor,
                solve_cache=cache,
            )
            warm_result, warm = evaluate_many(
                vanilla_factory,
                "verilogeval-v2",
                runs=2,
                problems=MIXED,
                executor=executor,
                solve_cache=cache,
            )
        assert cold.solve_cache.misses == len(MIXED) * 2
        assert warm.solve_cache.hits == len(MIXED) * 2
        assert warm.solve_cache.misses == 0
        assert warm_result.outcomes == cold_result.outcomes

    def test_warm_mage_pass_runs_no_simulations(self):
        """A fully warm solve-cell + simulation cache re-runs the sweep
        without a single engine step or simulation."""
        from repro.runtime import SimulationCache

        sim = SimulationCache()
        solve = SolveCellCache()
        with SerialExecutor() as executor:
            evaluate_many(
                SYSTEMS["mage"].factory,
                "verilogeval-v2",
                runs=1,
                problems=MIXED,
                executor=executor,
                cache=sim,
                solve_cache=solve,
            )
            _, warm = evaluate_many(
                SYSTEMS["mage"].factory,
                "verilogeval-v2",
                runs=1,
                problems=MIXED,
                executor=executor,
                cache=sim,
                solve_cache=solve,
            )
        assert warm.simulations == 0
        assert warm.solve_cache.hit_rate == 1.0

    def test_unfingerprintable_factory_still_evaluates(self):
        factory = lambda: VanillaLLM("itertl-ft", LOW)  # noqa: E731
        cache = SolveCellCache()
        with SerialExecutor() as executor:
            result, report = evaluate_many(
                factory,
                "verilogeval-v2",
                runs=1,
                problems=MIXED[:1],
                executor=executor,
                solve_cache=cache,
            )
        assert result.outcomes  # evaluated normally
        assert report.solve_cache.lookups == 0  # caching silently skipped

    def test_records_capture_events(self):
        cache = SolveCellCache()
        with SerialExecutor() as executor:
            evaluate_many(
                SYSTEMS["mage"].factory,
                "verilogeval-v2",
                runs=1,
                problems=MIXED[:1],
                executor=executor,
                solve_cache=cache,
            )
        fp = system_fingerprint(SYSTEMS["mage"].factory)
        record = cache.get(solve_cell_key(fp, MIXED[0], 0))
        assert isinstance(record, SolveCellRecord)
        assert "module" in record.source
        assert record.events  # the typed stream rode along
        assert any(e.kind == "run-finished" for e in record.events)

    def test_disk_roundtrip_across_instances(self, tmp_path):
        directory = str(tmp_path / "solvecache")
        writer = SolveCellCache(directory)
        with SerialExecutor() as executor:
            evaluate_many(
                vanilla_factory,
                "verilogeval-v2",
                runs=1,
                problems=MIXED[:2],
                executor=executor,
                solve_cache=writer,
            )
            reader = SolveCellCache(directory)
            _, warm = evaluate_many(
                vanilla_factory,
                "verilogeval-v2",
                runs=1,
                problems=MIXED[:2],
                executor=executor,
                solve_cache=reader,
            )
        assert warm.solve_cache.hits == 2
        assert reader.stats.disk_hits == 2

    def test_streaming_cell_events(self):
        events = []
        with SerialExecutor() as executor:
            evaluate_many(
                vanilla_factory,
                "verilogeval-v2",
                runs=2,
                problems=MIXED,
                executor=executor,
                events=events.append,
            )
        cell_events = [e for e in events if e.kind == "cell-finished"]
        assert len(cell_events) == len(MIXED) * 2
        assert events[-1].kind == "batch-finished"
        assert {e.problem_id for e in cell_events} == {p.id for p in MIXED}


class TestDiskInfo:
    def test_disk_cache_info(self, tmp_path):
        from repro.runtime import disk_cache_info

        directory = str(tmp_path / "cachedir")
        cache = SolveCellCache(directory)
        cache.put("k1", SolveCellRecord(source="module m; endmodule", system="s"))
        info = disk_cache_info(directory)
        assert info.entries == 1
        assert info.total_bytes > 0
        assert "entries" in info.render()

    def test_missing_directory_is_empty(self):
        from repro.runtime import disk_cache_info

        info = disk_cache_info("/nonexistent/cache/dir")
        assert info.entries == 0 and info.total_bytes == 0
