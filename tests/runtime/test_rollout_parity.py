"""Cross-path determinism matrix: {mage, vanilla, single-agent,
two-agent} x {serial, rollout-batched, rollout+speculation, service,
service+steal}.

The rollout determinism contract says batched output is *bit-identical*
to a ``--jobs 1 --rollout-batch 0`` serial run: same final sources,
same result rows, and the same typed event stream event-by-event.  The
only fields allowed to differ are wall-clock measurements
(``seconds``), which are zeroed by :func:`canonical` before comparison;
every other field -- scores, pool shapes, LLM-call counts, stage order
-- must match exactly.  The contract holds with fixed or adaptive wave
widths, with speculation on or off (speculation may only warm the
simulation cache), and whether score waves ran locally or were stolen
by a peer server.
"""

import threading
import time
from collections import Counter

import pytest

from repro.baselines.registry import SYSTEMS
from repro.core.events import CellFinished, ListSink
from repro.core.task import DesignTask
from repro.evalsets import get_problem, golden_testbench
from repro.runtime.batch import evaluate_many
from repro.runtime.cache import SimulationCache
from repro.runtime.executor import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.runtime.rollout import RolloutRequest, RolloutScheduler
from repro.service import (
    HashRing,
    ServiceClient,
    ServiceError,
    SolveServer,
    fetch_peers,
    ring_key,
    solve_grid,
)

# One representative per row of the matrix: the full engine, the
# single-stage baseline, the Table III single-agent ablation, and the
# AIVRIL-style coder+reviewer pair.  ``ar_addsub8`` reaches Step-5
# debug rounds on every seed, so the gang-scheduled debug path
# (suspend, coalesce, inject) is exercised by every matrix row.
SYSTEM_KEYS = ["mage", "vanilla-claude", "single-agent", "aivril"]
PROBLEM_IDS = ["cb_kmap_mux", "fs_vending", "ar_addsub8"]
SEED = 2


def canonical(events):
    """Event stream as JSON payloads with wall-clock fields zeroed."""
    payloads = []
    for event in events:
        payload = event.to_json()
        if "seconds" in payload:
            payload["seconds"] = 0.0
        payloads.append(payload)
    return payloads


@pytest.fixture(scope="module")
def serial_reference():
    """(system, problem) -> (source, canonical events) from plain solves."""
    reference = {}
    for key in SYSTEM_KEYS:
        for problem_id in PROBLEM_IDS:
            sink = ListSink()
            system = SYSTEMS[key].factory()
            source = system.solve(
                DesignTask.from_problem(get_problem(problem_id)),
                seed=SEED,
                sink=sink,
            )
            reference[(key, problem_id)] = (source, canonical(sink.events))
    return reference


def _rollout_run(key, executor, batch=8, speculate=None):
    sinks = {}
    requests = []
    for index, problem_id in enumerate(PROBLEM_IDS):
        problem = get_problem(problem_id)
        sinks[problem_id] = ListSink()
        requests.append(
            RolloutRequest(
                index=index,
                factory=SYSTEMS[key].factory,
                problem=problem,
                golden_tb=golden_testbench(problem),
                seed=SEED,
                sink=sinks[problem_id],
            )
        )
    scheduler = RolloutScheduler(
        executor=executor,
        batch=batch,
        cache=SimulationCache(),
        speculate=speculate,
    )
    results = scheduler.run(requests)
    return results, sinks, scheduler


class TestRolloutPathParity:
    @pytest.mark.parametrize("key", SYSTEM_KEYS)
    def test_batched_event_streams_are_bit_identical(
        self, key, serial_reference
    ):
        with ThreadExecutor(2) as executor:
            results, sinks, _ = _rollout_run(key, executor)
        for result, problem_id in zip(results, PROBLEM_IDS):
            assert result.error is None
            source, events = serial_reference[(key, problem_id)]
            assert result.source == source
            assert canonical(sinks[problem_id].events) == events
            # The result's own recorded stream is the same stream.
            assert canonical(result.events) == events

    def test_batched_streams_survive_process_boundaries(
        self, serial_reference
    ):
        """States snapshot into worker processes and back bit-identically
        (the mage row exercises suspension, injection, and resume)."""
        with ProcessExecutor(2) as executor:
            results, sinks, _ = _rollout_run("mage", executor)
        for result, problem_id in zip(results, PROBLEM_IDS):
            assert result.error is None
            source, events = serial_reference[("mage", problem_id)]
            assert result.source == source
            assert canonical(sinks[problem_id].events) == events

    @pytest.mark.parametrize("key", SYSTEM_KEYS)
    def test_adaptive_speculative_streams_are_bit_identical(
        self, key, serial_reference
    ):
        """``batch="auto"`` + speculation changes nothing observable:
        speculative simulations only warm the cache, never touch a
        per-run event stream."""
        with ThreadExecutor(2) as executor:
            results, sinks, scheduler = _rollout_run(
                key, executor, batch="auto", speculate=True
            )
        assert scheduler.adaptive and scheduler.speculate
        for result, problem_id in zip(results, PROBLEM_IDS):
            assert result.error is None
            source, events = serial_reference[(key, problem_id)]
            assert result.source == source
            assert canonical(sinks[problem_id].events) == events
        # Accounting stays consistent whatever speculation predicted.
        spec = scheduler.speculation
        assert spec.launched == spec.used + spec.mispredicted
        dedup = scheduler.dedup
        assert dedup.submitted == (
            dedup.executed + dedup.wave_duplicates + dedup.fabric_hits
        )

    @pytest.mark.parametrize("key", SYSTEM_KEYS)
    def test_rollout_grid_rows_match_serial(self, key):
        problems = [get_problem(problem_id) for problem_id in PROBLEM_IDS]
        with SerialExecutor() as executor:
            serial_result, _ = evaluate_many(
                SYSTEMS[key].factory,
                "verilogeval-v2",
                runs=2,
                seed0=SEED,
                problems=problems,
                executor=executor,
                cache=SimulationCache(),
            )
        with ThreadExecutor(2) as executor:
            rollout_result, report = evaluate_many(
                SYSTEMS[key].factory,
                "verilogeval-v2",
                runs=2,
                seed0=SEED,
                problems=problems,
                executor=executor,
                cache=SimulationCache(),
                rollout_batch=4,
            )
        assert rollout_result.outcomes == serial_result.outcomes
        assert "rollout[4]" in report.executor


class TestServicePathParity:
    @pytest.fixture(scope="class")
    def rollout_server(self):
        with SolveServer(workers=1, rollout_batch=4) as server:
            yield server

    @pytest.mark.parametrize("key", SYSTEM_KEYS)
    def test_batching_service_streams_are_bit_identical(
        self, key, serial_reference, rollout_server
    ):
        for problem_id in PROBLEM_IDS:
            sink = ListSink()
            with ServiceClient(rollout_server.address) as client:
                outcome = client.solve(
                    key, problem_id, seed=SEED, events=sink
                )
            source, events = serial_reference[(key, problem_id)]
            assert outcome.source == source
            # Frames crossed the wire via Event.to_json/from_json; the
            # canonical streams must still agree field-by-field.
            assert canonical(sink.events) == events

    def test_warm_service_replay_is_the_same_stream(
        self, serial_reference, rollout_server
    ):
        sink = ListSink()
        with ServiceClient(rollout_server.address) as client:
            outcome = client.solve(
                "mage", PROBLEM_IDS[0], seed=SEED, events=sink
            )
        assert outcome.cached  # second submit of the matrix cell
        _, events = serial_reference[("mage", PROBLEM_IDS[0])]
        assert canonical(sink.events) == events


class TestStealRingParity:
    """The service+steal matrix row: a two-server ring where the idle
    server drains the busy one's published score waves over
    ``WaveSteal`` frames.  Stealing moves pure simulations between
    machines, so whether a wave ran locally or was stolen, every
    solve's source and event stream must equal the serial reference."""

    @pytest.fixture(scope="class")
    def steal_ring(self):
        with SolveServer(workers=1, rollout_batch=4) as victim:
            with SolveServer(
                workers=1,
                rollout_batch=4,
                steal_peers=[victim.address],
            ) as thief:
                yield victim, thief

    @pytest.mark.parametrize("key", SYSTEM_KEYS)
    def test_ring_streams_are_bit_identical(
        self, key, serial_reference, steal_ring
    ):
        victim, _ = steal_ring
        for problem_id in PROBLEM_IDS:
            sink = ListSink()
            with ServiceClient(victim.address) as client:
                outcome = client.solve(
                    key, problem_id, seed=SEED, events=sink
                )
            source, events = serial_reference[(key, problem_id)]
            assert outcome.source == source
            assert canonical(sink.events) == events

    def test_thief_polled_the_victim(self, steal_ring):
        """The idle server's worker actually ran steal rounds against
        the peer ring while the victim was solving."""
        _, thief = steal_ring
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            service = thief.stats_snapshot()["service"]
            if service["steal_attempts"] > 0:
                break
            time.sleep(0.05)
        assert service["steal_attempts"] > 0


def _converged_ring(size=3, workers=2):
    """``size`` in-process servers joined into one converged ring."""
    seed = SolveServer(workers=workers, peer_interval=0.1).start()
    servers = [seed]
    try:
        for _ in range(size - 1):
            servers.append(
                SolveServer(
                    workers=workers,
                    join=(seed.address,),
                    peer_interval=0.1,
                ).start()
            )
        members = {server.advertised for server in servers}
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            try:
                views = [
                    set(fetch_peers(server.address, timeout=5.0))
                    for server in servers
                ]
            except (ServiceError, OSError):
                views = []
            if views and all(view >= members for view in views):
                return servers
            time.sleep(0.05)
        raise AssertionError("ring never converged to full membership")
    except BaseException:
        for server in servers:
            server.kill()
        raise


def _ring_victim(servers, key, problems, runs, seed0):
    """The member owning the most cells of this grid (and a survivor)."""
    from repro.service.worker import registered_system_name

    ring = HashRing(sorted(server.advertised for server in servers))
    resolved = registered_system_name(key)  # placement uses this name
    owners = Counter(
        ring.node_for(ring_key(resolved, problem.id, seed0 + run))
        for problem in problems
        for run in range(runs)
    )
    victim_address = owners.most_common(1)[0][0]
    victim = next(
        server for server in servers
        if server.advertised == victim_address
    )
    survivor = next(
        server for server in servers
        if server.advertised != victim_address
    )
    return victim, survivor


class TestElasticRingParity:
    """The ring and ring+kill matrix rows: cells placed by consistent
    hash over a 3-member elastic ring -- with and without a member
    dying mid-grid -- must produce the exact rows a serial local run
    does, for every system in the matrix.

    Four runs per problem give the busiest member at least four cells,
    so the mid-grid kill always lands while it still has queued work
    -- the re-shard path is exercised on every parametrization, not
    just when the scheduler happens to race a certain way."""

    RUNS = 4

    @pytest.fixture(scope="class")
    def serial_grids(self):
        """key -> serial-reference EvalResult for the 3-problem grid."""
        problems = [get_problem(problem_id) for problem_id in PROBLEM_IDS]
        reference = {}
        for key in SYSTEM_KEYS:
            with SerialExecutor() as executor:
                result, _ = evaluate_many(
                    SYSTEMS[key].factory,
                    "verilogeval-v2",
                    runs=self.RUNS,
                    seed0=SEED,
                    problems=problems,
                    executor=executor,
                    cache=SimulationCache(),
                )
            reference[key] = result
        return reference

    @pytest.fixture(scope="class")
    def ring_servers(self):
        servers = _converged_ring()
        yield servers
        for server in servers:
            server.kill()

    @pytest.mark.parametrize("key", SYSTEM_KEYS)
    def test_ring_grid_rows_match_serial(
        self, key, serial_grids, ring_servers
    ):
        """One seed address suffices: membership is discovered, cells
        are hash-placed, and the merged rows match serial exactly."""
        result, report = solve_grid(
            key,
            "verilogeval-v2",
            runs=self.RUNS,
            seed0=SEED,
            problems=[get_problem(problem_id) for problem_id in PROBLEM_IDS],
            shards=[ring_servers[0].address],
            ring=True,
        )
        assert result.outcomes == serial_grids[key].outcomes
        assert set(report.shards) == {
            server.advertised for server in ring_servers
        }
        assert sum(report.shard_cells.values()) == len(PROBLEM_IDS) * self.RUNS
        assert report.dead_shards == []

    @pytest.mark.parametrize("key", SYSTEM_KEYS)
    def test_ring_kill_grid_rows_match_serial(self, key, serial_grids):
        """Killing the busiest member on the first finished cell still
        yields bit-identical rows: orphans migrate to the survivors."""
        problems = [get_problem(problem_id) for problem_id in PROBLEM_IDS]
        servers = _converged_ring()
        try:
            victim, survivor = _ring_victim(
                servers, key, problems, self.RUNS, SEED
            )
            killed = threading.Event()

            def chaos(event):
                if isinstance(event, CellFinished) and not killed.is_set():
                    killed.set()
                    victim.kill()

            result, report = solve_grid(
                key,
                "verilogeval-v2",
                runs=self.RUNS,
                seed0=SEED,
                problems=problems,
                shards=[survivor.address],
                ring=True,
                events=chaos,
            )
        finally:
            for server in servers:
                server.kill()
        assert killed.is_set()
        assert result.outcomes == serial_grids[key].outcomes
        assert report.dead_shards == [victim.advertised]
        assert report.cells == len(problems) * self.RUNS
