"""Content-addressed simulation cache: keys, accounting, disk layer."""

import pytest

from repro.evalsets import get_problem, golden_testbench
from repro.runtime.cache import (
    SimulationCache,
    cached_run_testbench,
    simulation_key,
)
from repro.tb.runner import run_testbench

@pytest.fixture(scope="module")
def problem():
    return get_problem("cb_and_or_gate")


# A correct and an observably-buggy implementation of cb_and_or_gate.
AND_OR = get_problem("cb_and_or_gate").golden
XOR = AND_OR.replace("a & b", "a | b")


@pytest.fixture(scope="module")
def golden_tb(problem):
    return golden_testbench(problem)


class TestSimulationKey:
    def test_deterministic(self, golden_tb):
        assert simulation_key(AND_OR, golden_tb, "top_module") == simulation_key(
            AND_OR, golden_tb, "top_module"
        )

    def test_different_source_different_key(self, golden_tb):
        assert simulation_key(AND_OR, golden_tb) != simulation_key(XOR, golden_tb)

    def test_same_source_different_testbench(self, problem, golden_tb):
        """Collision safety: the testbench is part of the identity."""
        other_tb = golden_testbench(problem, seed=99)
        assert simulation_key(AND_OR, golden_tb) != simulation_key(
            AND_OR, other_tb
        )

    def test_different_top_different_key(self, golden_tb):
        assert simulation_key(AND_OR, golden_tb, "top_module") != simulation_key(
            AND_OR, golden_tb, "other"
        )

    def test_field_boundaries_are_hashed(self):
        """Length prefixes: moving bytes across the source/tb boundary
        must change the key even when the concatenation is identical."""
        tb = "TESTBENCH comb\nINPUTS a\nOUTPUTS y\n"
        assert simulation_key("ab", "c" + tb) != simulation_key("abc", tb)


class TestAccounting:
    def test_miss_then_hit(self, golden_tb, problem):
        cache = SimulationCache()
        first = cached_run_testbench(AND_OR, golden_tb, problem.top, cache=cache)
        second = cached_run_testbench(AND_OR, golden_tb, problem.top, cache=cache)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1
        assert second is first  # served from memory, not re-simulated

    def test_distinct_triples_do_not_collide(self, golden_tb, problem):
        cache = SimulationCache()
        passing = cached_run_testbench(AND_OR, golden_tb, problem.top, cache=cache)
        failing = cached_run_testbench(XOR, golden_tb, problem.top, cache=cache)
        assert cache.stats.misses == 2
        assert passing.passed and not failing.passed

    def test_cached_report_matches_direct_run(self, golden_tb, problem):
        cache = SimulationCache()
        cached = cached_run_testbench(AND_OR, golden_tb, problem.top, cache=cache)
        direct = run_testbench(AND_OR, golden_tb, problem.top)
        assert cached.score == direct.score
        assert cached.passed == direct.passed
        assert len(cached.records) == len(direct.records)

    def test_hit_rate(self):
        cache = SimulationCache()
        assert cache.stats.hit_rate == 0.0
        cache.stats.hits = 3
        cache.stats.misses = 1
        assert cache.stats.hit_rate == 0.75

    def test_stats_delta(self, golden_tb, problem):
        cache = SimulationCache()
        cached_run_testbench(AND_OR, golden_tb, problem.top, cache=cache)
        before = cache.stats.snapshot()
        cached_run_testbench(AND_OR, golden_tb, problem.top, cache=cache)
        delta = cache.stats.delta(before)
        assert (delta.hits, delta.misses) == (1, 0)


class TestEviction:
    def test_memory_layer_is_lru_bounded(self, golden_tb, problem):
        cache = SimulationCache(max_entries=2)
        variants = [
            AND_OR.replace("a & b", expr)
            for expr in ("a & b", "a | b", "a ^ b", "~(a & b)")
        ]
        for source in variants:
            cached_run_testbench(source, golden_tb, problem.top, cache=cache)
        assert len(cache) == 2  # oldest entries evicted
        # Most recent entry still hits; the first was evicted -> miss.
        before = cache.stats.snapshot()
        cached_run_testbench(variants[-1], golden_tb, problem.top, cache=cache)
        cached_run_testbench(variants[0], golden_tb, problem.top, cache=cache)
        delta = cache.stats.delta(before)
        assert (delta.hits, delta.misses) == (1, 1)

    def test_bad_max_entries_rejected(self):
        with pytest.raises(ValueError):
            SimulationCache(max_entries=0)


class TestDiskLayer:
    def test_roundtrip_across_instances(self, tmp_path, golden_tb, problem):
        directory = str(tmp_path / "simcache")
        writer = SimulationCache(directory)
        report = cached_run_testbench(
            AND_OR, golden_tb, problem.top, cache=writer
        )
        reader = SimulationCache(directory)
        again = cached_run_testbench(
            AND_OR, golden_tb, problem.top, cache=reader
        )
        assert reader.stats.hits == 1
        assert reader.stats.disk_hits == 1
        assert reader.stats.misses == 0
        assert again.score == report.score

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path, golden_tb, problem):
        directory = str(tmp_path / "simcache")
        cache = SimulationCache(directory)
        key = simulation_key(AND_OR, golden_tb, problem.top)
        (tmp_path / "simcache" / f"{key}.pkl").write_bytes(b"not a pickle")
        report = cached_run_testbench(AND_OR, golden_tb, problem.top, cache=cache)
        assert cache.stats.misses == 1
        assert report.passed


class TestDisabled:
    def test_disabled_runtime_runs_directly(self, golden_tb, problem):
        from repro.runtime.context import get_runtime, runtime_session

        with runtime_session(cache=False):
            assert get_runtime().cache is None
            report = cached_run_testbench(AND_OR, golden_tb, problem.top)
        assert report.passed

    def test_simulation_counter_advances_only_on_real_runs(
        self, golden_tb, problem
    ):
        from repro.runtime.cache import simulation_count

        cache = SimulationCache()
        before = simulation_count()
        cached_run_testbench(AND_OR, golden_tb, problem.top, cache=cache)
        cached_run_testbench(AND_OR, golden_tb, problem.top, cache=cache)
        assert simulation_count() - before == 1  # second call was a hit


class TestPeek:
    """peek: stats-neutral probe that promotes disk reads to memory."""

    def test_peek_does_not_touch_counters(self):
        cache = SimulationCache()
        cache.put("k", run_testbench(AND_OR, golden_testbench(get_problem("cb_and_or_gate"))))
        before = cache.stats.snapshot()
        assert cache.peek("k") is not None
        assert cache.peek("missing") is None
        after = cache.stats
        assert (after.hits, after.misses) == (before.hits, before.misses)

    def test_peek_promotes_disk_entry_to_memory(self, tmp_path, golden_tb):
        directory = str(tmp_path / "simcache")
        report = run_testbench(AND_OR, golden_tb)
        writer = SimulationCache(directory)
        key = simulation_key(AND_OR, golden_tb)
        writer.put(key, report)
        reader = SimulationCache(directory)
        assert len(reader) == 0
        assert reader.peek(key) is not None
        assert len(reader) == 1  # promoted: the counted get won't re-unpickle
        assert reader.peek(key) is not None
        got = reader.get(key)
        assert got is not None
        assert reader.stats.hits == 1
        assert reader.stats.disk_hits == 0  # served from the promoted copy
