"""The tiered cache fabric: tier composition, promotion, eviction,
disk-tier corruption robustness (seeded-random, mirroring
tests/service/test_protocol_properties.py), and config wiring."""

import os
import pickle
import random

import pytest

from repro.runtime.cache import (
    CacheTier,
    DiskTier,
    MemoryTier,
    SimulationCache,
    SolveCellCache,
    SolveCellRecord,
    TieredCache,
    clear_disk_cache,
    decode_value,
    disk_cache_info,
    encode_value,
)
from repro.runtime.config import RuntimeConfig


class TestComposition:
    def test_default_stack_is_memory_only(self):
        cache = SimulationCache()
        assert [t.kind for t in cache.tiers] == ["memory"]
        assert cache.directory is None
        assert cache.peers == ()

    def test_directory_adds_a_disk_tier(self, tmp_path):
        cache = SimulationCache(str(tmp_path / "c"))
        assert [t.kind for t in cache.tiers] == ["memory", "disk"]
        assert cache.directory == str(tmp_path / "c")

    def test_peers_add_remote_tiers_last(self, tmp_path):
        cache = SolveCellCache(
            str(tmp_path / "c"), peers=("127.0.0.1:1", "127.0.0.1:2")
        )
        assert [t.kind for t in cache.tiers] == [
            "memory",
            "disk",
            "remote",
            "remote",
        ]
        assert cache.peers == ("127.0.0.1:1", "127.0.0.1:2")
        # The remote tiers carry the cache's wire routing tag.
        assert all(
            t.layer == "solve" for t in cache.tiers if t.kind == "remote"
        )

    def test_explicit_tier_stack(self):
        cache = TieredCache(tiers=[MemoryTier(4)])
        cache.put("k", "v")
        assert cache.get("k") == "v"

    def test_tier_report_rows(self, tmp_path):
        cache = SimulationCache(str(tmp_path / "c"))
        rows = cache.tier_report()
        assert [row["kind"] for row in rows] == ["memory", "disk"]
        assert all("hits" in row and "corrupt" in row for row in rows)


class TestPromotionAndWritePolicy:
    def test_disk_hit_promotes_to_memory(self, tmp_path):
        directory = str(tmp_path / "c")
        record = SolveCellRecord(source="module m; endmodule", system="s")
        SolveCellCache(directory).put("k", record)
        reader = SolveCellCache(directory)
        assert len(reader) == 0
        got = reader.get("k")
        assert got == record
        assert reader.stats.disk_hits == 1
        assert len(reader) == 1  # promoted
        # Second lookup is answered by the memory tier.
        assert reader.get("k") == record
        assert reader.stats.disk_hits == 1
        assert reader.stats.hits == 2

    def test_put_writes_through_to_disk(self, tmp_path):
        directory = str(tmp_path / "c")
        cache = SolveCellCache(directory)
        cache.put("k", SolveCellRecord(source="x", system="s"))
        assert disk_cache_info(directory).entries == 1

    def test_read_only_tier_is_skipped_by_writes(self):
        frozen = MemoryTier(8)
        frozen.writes = False
        cache = TieredCache(tiers=[MemoryTier(8), frozen])
        cache.put("k", "v")
        assert frozen.peek("k") is None
        assert cache.get("k") == "v"

    def test_peek_local_skips_remote_tiers(self):
        class Exploding(CacheTier):
            kind = "remote"

            def get(self, key):
                raise AssertionError("peek_local must not reach remote tiers")

            peek = get

            def put(self, key, value):
                raise AssertionError("local put must not reach remote tiers")

        cache = TieredCache(tiers=[MemoryTier(8), Exploding()])
        cache.put_local("k", "v")
        assert cache.peek_local("k") == "v"
        assert cache.peek_local("missing") is None


class TestMemoryTierEviction:
    def test_lru_eviction_order(self):
        tier = MemoryTier(max_entries=3)
        for key in ("a", "b", "c"):
            tier.put(key, key.upper())
        assert tier.get("a") == "A"  # touch: a becomes most-recent
        tier.put("d", "D")  # evicts b, the least recently used
        assert tier.peek("b") is None
        assert tier.peek("a") == "A"
        assert tier.peek("c") == "C"
        assert tier.peek("d") == "D"
        assert tier.stats.evictions == 1

    def test_peek_does_not_touch_lru_order(self):
        tier = MemoryTier(max_entries=2)
        tier.put("a", 1)
        tier.put("b", 2)
        tier.peek("a")  # NOT a touch
        tier.put("c", 3)  # evicts a (peek kept it least-recent)
        assert tier.peek("a") is None
        assert tier.peek("b") == 2

    def test_cap_applies_through_the_cache(self):
        cache = SimulationCache(max_entries=2)
        memory = cache.tiers[0]
        assert memory.max_entries == 2

    def test_env_var_sets_default_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "17")
        assert SimulationCache().tiers[0].max_entries == 17

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            MemoryTier(max_entries=0)
        with pytest.raises(ValueError):
            SimulationCache(max_entries=-1)


class TestRuntimeConfigWiring:
    def test_config_fields_resolve_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_PEERS", "127.0.0.1:7001, 127.0.0.1:7002")
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "99")
        config = RuntimeConfig.from_env()
        assert config.cache_peers == ("127.0.0.1:7001", "127.0.0.1:7002")
        assert config.cache_max_entries == 99

    def test_explicit_args_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_PEERS", "127.0.0.1:7001")
        config = RuntimeConfig.from_env(cache_peers=(), cache_max_entries=5)
        assert config.cache_peers == ()
        assert config.cache_max_entries == 5

    def test_bad_max_entries_rejected(self):
        with pytest.raises(ValueError):
            RuntimeConfig(cache_max_entries=0)

    def test_runtime_session_builds_peered_caches(self):
        from repro.runtime.context import get_runtime, runtime_session

        with runtime_session(
            cache_peers=("127.0.0.1:7001",), cache_max_entries=11
        ):
            cache = get_runtime().cache
            assert cache.peers == ("127.0.0.1:7001",)
            assert cache.tiers[0].max_entries == 11


def _corrupt(rng: random.Random, path: str) -> str:
    """Apply one random corruption to a cache file; returns its kind."""
    with open(path, "rb") as handle:
        data = handle.read()
    mode = rng.choice(["truncate", "flip", "garbage", "wrong-type", "empty"])
    if mode == "truncate":
        cut = rng.randrange(0, max(1, len(data) - 1))
        blob = data[:cut]
    elif mode == "flip":
        blob = bytearray(data)
        for _ in range(rng.randint(1, 8)):
            index = rng.randrange(len(blob))
            blob[index] = rng.randrange(256)
        blob = bytes(blob)
    elif mode == "garbage":
        blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 256)))
    elif mode == "wrong-type":
        blob = pickle.dumps({"not": "a record"})
    else:
        blob = b""
    with open(path, "wb") as handle:
        handle.write(blob)
    return mode


class TestDiskCorruptionProperties:
    """Seeded-random corruption sweep: every mangled entry is a counted
    miss, never an exception -- the disk tier's robustness contract."""

    @pytest.mark.parametrize("seed", range(20))
    def test_corrupted_entries_are_counted_misses(self, tmp_path, seed):
        rng = random.Random(seed)
        directory = str(tmp_path / "c")
        writer = SolveCellCache(directory)
        keys = [f"key{i}" for i in range(rng.randint(1, 5))]
        for key in keys:
            writer.put(
                key, SolveCellRecord(source=f"module {key};", system="s")
            )
        broken = rng.sample(keys, rng.randint(1, len(keys)))
        for key in broken:
            _corrupt(rng, os.path.join(directory, f"{key}.pkl"))
        reader = SolveCellCache(directory)
        for key in keys:
            value = reader.get(key)  # must never raise
            if key in broken:
                assert value is None
            else:
                assert value is not None
        assert reader.stats.misses == len(broken)
        assert reader.stats.corrupt == len(broken)
        assert reader.stats.hits == len(keys) - len(broken)

    @pytest.mark.parametrize("seed", range(5))
    def test_peek_is_equally_robust(self, tmp_path, seed):
        rng = random.Random(1000 + seed)
        directory = str(tmp_path / "c")
        SolveCellCache(directory).put(
            "k", SolveCellRecord(source="module m;", system="s")
        )
        _corrupt(rng, os.path.join(directory, "k.pkl"))
        reader = SolveCellCache(directory)
        assert reader.peek("k") is None  # never raises
        assert reader.stats.corrupt == 1
        assert reader.stats.misses == 0  # peek stays lookup-neutral

    def test_missing_entry_is_a_plain_miss_not_corrupt(self, tmp_path):
        cache = SolveCellCache(str(tmp_path / "c"))
        assert cache.get("absent") is None
        assert cache.stats.misses == 1
        assert cache.stats.corrupt == 0

    def test_corrupt_entry_recovers_after_overwrite(self, tmp_path):
        directory = str(tmp_path / "c")
        cache = SolveCellCache(directory)
        record = SolveCellRecord(source="module m;", system="s")
        cache.put("k", record)
        _corrupt(random.Random(7), os.path.join(directory, "k.pkl"))
        cache.clear()  # drop the memory copy so the disk read happens
        assert cache.get("k") is None
        cache.put("k", record)
        cache.clear()
        assert cache.get("k") == record


class TestValueTransport:
    def test_roundtrip(self):
        record = SolveCellRecord(source="module m;", system="s")
        assert decode_value(encode_value(record), SolveCellRecord) == record

    def test_wrong_type_guard(self):
        blob = encode_value({"not": "a record"})
        assert decode_value(blob, SolveCellRecord) is None
        assert decode_value(blob, dict) == {"not": "a record"}

    @pytest.mark.parametrize("seed", range(10))
    def test_garbage_blobs_never_raise(self, seed):
        rng = random.Random(seed)
        junk = "".join(
            rng.choice("abcdef0123456789=!@#") for _ in range(rng.randrange(64))
        )
        assert decode_value(junk, SolveCellRecord) is None


class TestClearDiskCache:
    def test_clear_reports_and_removes(self, tmp_path):
        directory = str(tmp_path / "c")
        cache = SolveCellCache(directory)
        cache.put("a", SolveCellRecord(source="x", system="s"))
        cache.put("b", SolveCellRecord(source="y", system="s"))
        removed = clear_disk_cache(directory)
        assert removed.entries == 2
        assert disk_cache_info(directory).entries == 0

    def test_missing_directory_is_a_noop(self):
        removed = clear_disk_cache("/nonexistent/cache/dir")
        assert removed.entries == 0
