"""Batch evaluation: serial-vs-parallel parity, stats, progress."""

from functools import partial

import pytest

from repro.baselines.registry import SYSTEMS, evaluate_registered
from repro.baselines.vanilla import VanillaLLM
from repro.core.config import MAGEConfig
from repro.evalsets import get_problem
from repro.evaluation.harness import evaluate_mage, evaluate_system
from repro.llm.interface import SamplingParams
from repro.runtime import (
    ProcessExecutor,
    SerialExecutor,
    SimulationCache,
    ThreadExecutor,
    evaluate_many,
)

LOW = SamplingParams(temperature=0.0, top_p=0.01, n=1)
MIXED = [get_problem(p) for p in ["cb_mux2", "cb_kmap_mux", "fs_seq_det_110"]]

vanilla_factory = partial(VanillaLLM, "itertl-ft", LOW)


class TestParity:
    """Fixed seeds give bit-identical EvalResults at any worker count."""

    def test_jobs_1_2_4_identical(self):
        results = []
        for workers in (1, 2, 4):
            executor = (
                SerialExecutor() if workers == 1 else ThreadExecutor(workers)
            )
            with executor:
                results.append(
                    evaluate_system(
                        vanilla_factory,
                        "verilogeval-v2",
                        runs=3,
                        seed0=7,
                        problems=MIXED,
                        executor=executor,
                    )
                )
        assert results[0].outcomes == results[1].outcomes
        assert results[0].outcomes == results[2].outcomes
        assert results[0].system == results[1].system

    def test_process_executor_parity(self):
        with SerialExecutor() as serial:
            baseline = evaluate_system(
                vanilla_factory,
                "verilogeval-v2",
                runs=2,
                problems=MIXED,
                executor=serial,
            )
        with ProcessExecutor(2) as procs:
            parallel = evaluate_system(
                vanilla_factory,
                "verilogeval-v2",
                runs=2,
                problems=MIXED,
                executor=procs,
            )
            assert procs.fallbacks == 0  # registry partials crossed for real
        assert baseline.outcomes == parallel.outcomes

    def test_mage_thread_parity(self):
        config = MAGEConfig.high_temperature()
        with SerialExecutor() as serial:
            baseline = evaluate_mage(
                config, "verilogeval-v2", runs=2, problems=MIXED, executor=serial
            )
        with ThreadExecutor(4) as threads:
            parallel = evaluate_mage(
                config, "verilogeval-v2", runs=2, problems=MIXED, executor=threads
            )
        assert baseline.outcomes == parallel.outcomes

    def test_seed0_changes_sampled_outcomes(self):
        a = evaluate_mage(
            MAGEConfig.high_temperature(),
            "verilogeval-v2",
            runs=1,
            seed0=0,
            problems=MIXED,
        )
        b = evaluate_mage(
            MAGEConfig.high_temperature(),
            "verilogeval-v2",
            runs=1,
            seed0=1,
            problems=MIXED,
        )
        # Different base seeds resample candidates; scores may differ.
        # (Equality of Pass@1 is possible; the tally shape must hold.)
        assert [o.runs for o in a.outcomes] == [o.runs for o in b.outcomes]


class TestBatchReport:
    def test_cache_hits_on_repeat_pass(self):
        cache = SimulationCache()
        with SerialExecutor() as executor:
            _, cold = evaluate_many(
                vanilla_factory,
                "verilogeval-v2",
                runs=2,
                problems=MIXED,
                executor=executor,
                cache=cache,
            )
            result, warm = evaluate_many(
                vanilla_factory,
                "verilogeval-v2",
                runs=2,
                problems=MIXED,
                executor=executor,
                cache=cache,
            )
        assert cold.cache.misses > 0
        assert warm.cache.hits > 0
        assert warm.cache.misses == 0
        assert warm.simulations == 0
        assert warm.cache.hit_rate == 1.0
        assert result.outcomes  # tally still assembled from cached reports

    def test_report_counts_grid(self):
        with SerialExecutor() as executor:
            result, report = evaluate_many(
                vanilla_factory,
                "verilogeval-v2",
                runs=2,
                problems=MIXED,
                executor=executor,
                cache=SimulationCache(),
            )
        assert report.cells == len(MIXED) * 2
        assert len(report.cell_seconds) == report.cells
        assert report.wall_seconds > 0
        assert report.executor == "serial[1]"
        assert "cache lookups" in report.render()

    def test_cache_disabled(self):
        with SerialExecutor() as executor:
            _, report = evaluate_many(
                vanilla_factory,
                "verilogeval-v2",
                runs=1,
                problems=MIXED,
                executor=executor,
                cache=False,
            )
        assert report.cache.lookups == 0
        assert report.simulations > 0  # still counted without a cache

    def test_process_simulation_count_matches_serial(self):
        """No-cache process runs must report real simulations, not cells."""
        mage_factory = SYSTEMS["mage"].factory
        with SerialExecutor() as serial:
            # Warm-up: populate SimLLM's one-time per-(model, problem)
            # memos (misconception validation simulates once); forked
            # pool workers inherit them, so both measured runs must
            # start from the same steady state.
            evaluate_many(
                mage_factory,
                "verilogeval-v2",
                runs=1,
                problems=MIXED,
                executor=serial,
                cache=False,
            )
            _, baseline = evaluate_many(
                mage_factory,
                "verilogeval-v2",
                runs=2,
                problems=MIXED,
                executor=serial,
                cache=False,
            )
        with ProcessExecutor(2) as procs:
            _, parallel = evaluate_many(
                mage_factory,
                "verilogeval-v2",
                runs=2,
                problems=MIXED,
                executor=procs,
                cache=False,
            )
        assert parallel.simulations == baseline.simulations
        # MAGE scores candidates internally: far more sims than cells.
        assert parallel.simulations > parallel.cells

    def test_process_pool_with_closure_keeps_live_cache(self):
        """An unpicklable factory on a process pool must thread-fall-back
        *with* the caller's cache, not silently lose it."""
        cache = SimulationCache()
        factory = lambda: VanillaLLM("itertl-ft", LOW)  # noqa: E731
        with ProcessExecutor(2) as procs:
            evaluate_many(
                factory,
                "verilogeval-v2",
                runs=1,
                problems=MIXED,
                executor=procs,
                cache=cache,
            )
            _, warm = evaluate_many(
                factory,
                "verilogeval-v2",
                runs=1,
                problems=MIXED,
                executor=procs,
                cache=cache,
            )
        assert cache.stats.lookups > 0  # the passed cache was really used
        assert warm.cache.misses == 0
        assert warm.cache.hit_rate == 1.0


class TestProgressAndName:
    def test_progress_lines_in_suite_order(self):
        lines = []
        with ThreadExecutor(4) as executor:
            evaluate_system(
                vanilla_factory,
                "verilogeval-v2",
                runs=2,
                problems=MIXED,
                executor=executor,
                progress=lines.append,
            )
        assert len(lines) == len(MIXED)
        for line, problem in zip(lines, MIXED):
            assert problem.id in line

    def test_name_avoids_factory_construction(self):
        calls = []

        def factory():
            calls.append(1)
            return VanillaLLM("itertl-ft", LOW)

        result = evaluate_system(
            factory,
            "verilogeval-v2",
            runs=1,
            problems=MIXED[:1],
            name="labelled",
        )
        assert result.system == "labelled"
        assert len(calls) == 1  # one per run cell; none for the label

    def test_registry_route(self):
        result, report = evaluate_registered(
            "vanilla-claude", "verilogeval-v2", runs=1
        )
        assert result.system.startswith("vanilla[")
        assert report.cells == len(result.outcomes)

    def test_registry_unknown_key(self):
        with pytest.raises(KeyError):
            evaluate_registered("martian")
