"""Baseline systems: interfaces, behaviour, registry integrity."""

import pytest

from repro.baselines import (
    SYSTEMS,
    SelfReflection,
    SingleAgentPipeline,
    TwoAgentSystem,
    VanillaLLM,
    create_system,
    system_names,
)
from repro.core.task import DesignTask
from repro.evalsets import get_problem, golden_testbench
from repro.hdl.lint import lint
from repro.llm.interface import SamplingParams
from repro.tb.runner import run_testbench


@pytest.fixture()
def task():
    return DesignTask.from_problem(get_problem("cb_mux4"))


class TestVanilla:
    def test_produces_code(self, task):
        system = VanillaLLM("claude-3.5-sonnet")
        code = system.solve(task, seed=0)
        assert "module" in code

    def test_deterministic_at_t0(self, task):
        system = VanillaLLM("claude-3.5-sonnet")
        assert system.solve(task, seed=0) == system.solve(task, seed=1)

    def test_easy_problem_passes(self):
        problem = get_problem("cb_and_or_gate")
        system = VanillaLLM("claude-3.5-sonnet")
        code = system.solve(DesignTask.from_problem(problem))
        report = run_testbench(code, golden_testbench(problem), problem.top)
        assert report.passed

    def test_name_includes_model(self):
        assert "gpt-4o" in VanillaLLM("gpt-4o").name


class TestSelfReflection:
    def test_produces_compiling_code_usually(self, task):
        system = SelfReflection("deepseek-coder-7b-lora", rounds=3)
        code = system.solve(task, seed=0)
        assert "module" in code


class TestSingleAgentPipeline:
    def test_full_result_exposes_transcript(self):
        problem = get_problem("sq_tff")
        system = SingleAgentPipeline("claude-3.5-sonnet")
        result = system.solve_full(DesignTask.from_problem(problem), seed=0)
        assert result.transcript.llm_calls > 0

    def test_config_is_merged_history_log_only(self):
        system = SingleAgentPipeline("claude-3.5-sonnet")
        assert system.config.single_agent
        assert not system.config.use_checkpoints


class TestTwoAgent:
    def test_solves_easy_problem(self):
        problem = get_problem("cb_mux2")
        system = TwoAgentSystem("claude-3.5-sonnet")
        code = system.solve(DesignTask.from_problem(problem), seed=0)
        assert lint(code, problem.top).ok


class TestRegistry:
    def test_expected_rows_present(self):
        keys = set(system_names())
        assert {
            "vanilla-claude",
            "vanilla-gpt-4o",
            "vanilla-itertl",
            "vanilla-codev",
            "origen",
            "veriassist",
            "autovcoder",
            "verilogcoder",
            "aivril",
            "mage",
        } <= keys

    def test_factories_build(self):
        for key in system_names():
            system = create_system(key)
            assert hasattr(system, "solve") and system.name

    def test_unknown_system(self):
        with pytest.raises(KeyError):
            create_system("magician")

    def test_paper_references_recorded(self):
        assert SYSTEMS["mage"].paper_v1 == 94.8
        assert SYSTEMS["mage"].paper_v2 == 95.7
        assert SYSTEMS["vanilla-claude"].paper_v1 == 75.0

    def test_mage_solves(self, task):
        system = create_system("mage")
        code = system.solve(task, seed=0)
        assert lint(code, task.top).ok
