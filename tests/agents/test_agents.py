"""Agent-level tests: each specialist driving the simulated LLM."""

import pytest

from repro.agents import DebugAgent, JudgeAgent, RTLAgent, TestbenchAgent
from repro.agents.messages import (
    CandidateMessage,
    ScoreMessage,
    SpecMessage,
    TestbenchMessage,
)
from repro.core.task import DesignTask
from repro.evalsets import get_problem, golden_testbench
from repro.hdl.lint import lint
from repro.llm import SamplingParams, SimLLM
from repro.llm.genome import CandidateGenome
from repro.llm.interface import Conversation
from repro.tb.runner import run_testbench

LOW = SamplingParams(temperature=0.0, top_p=0.01, n=1)
DEBUG = SamplingParams(temperature=0.4, top_p=0.95, n=1, seed=0)


@pytest.fixture()
def llm():
    return SimLLM("claude-3.5-sonnet")


@pytest.fixture()
def task():
    return DesignTask.from_problem(get_problem("sq_counter_ud"))


class TestMessages:
    def test_spec_message_render(self, task):
        text = SpecMessage(task.spec, task.top, task.kind, task.clock).render()
        assert task.spec in text and task.top in text and "clock" in text

    def test_comb_spec_message(self):
        text = SpecMessage("spec", "m", "comb", None).render()
        assert "combinational" in text

    def test_testbench_message(self):
        assert "```testbench" in TestbenchMessage("TESTBENCH comb\n").render()

    def test_candidate_message(self):
        assert "```verilog" in CandidateMessage("module m; endmodule\n").render()

    def test_score_message(self):
        msg = ScoreMessage(score=0.75, mismatches=5, total_checks=20, error=None)
        assert "0.750" in msg.render()
        err = ScoreMessage(score=0.0, mismatches=1, total_checks=1, error="boom")
        assert "boom" in err.render()


class TestTestbenchAgent:
    def test_generates_parseable_testbench(self, llm, task):
        agent = TestbenchAgent(llm)
        text, tb = agent.generate(task, LOW)
        assert tb.kind == "clocked" and tb.clock == "clk"
        assert tb.total_checks > 0
        assert "TESTBENCH" in text

    def test_history_grows(self, llm, task):
        agent = TestbenchAgent(llm)
        agent.generate(task, LOW)
        assert agent.conversation.turns == 2  # prompt + reply

    def test_regeneration_mentions_reason(self, llm, task):
        agent = TestbenchAgent(llm)
        agent.generate(task, LOW, reason="expected values look wrong.")
        prompt = agent.conversation.messages[0].content
        assert "expected values look wrong." in prompt


class TestRTLAgent:
    def test_initial_generation_compiles(self, llm, task):
        agent = RTLAgent(llm)
        code, clean = agent.generate_initial(task, None, LOW)
        assert clean and lint(code, task.top).ok

    def test_candidates_are_syntax_fixed(self, llm, task):
        agent = RTLAgent(llm)
        params = SamplingParams(temperature=0.85, top_p=0.95, n=1, seed=5)
        candidates = agent.sample_candidates(task, None, params, 6)
        assert len(candidates) == 6
        for code in candidates:
            assert lint(code, task.top).ok

    def test_fix_syntax_repairs_broken_code(self, llm, task):
        agent = RTLAgent(llm)
        # First make genuine generated code, then break it textually.
        code, _ = agent.generate_initial(task, None, LOW)
        broken = code.replace(";", "", 1)
        llm.registry.remember_code(
            broken, CandidateGenome(get_problem("sq_counter_ud").id, (), "missing semicolon")
        )
        fixed, clean = agent.fix_syntax(task, broken, DEBUG)
        assert clean


class TestJudgeAgent:
    def test_score_runs_simulator(self, llm, task):
        problem = get_problem("sq_counter_ud")
        judge = JudgeAgent(llm)
        tb = golden_testbench(problem)
        report = judge.score(problem.golden, tb, problem.top)
        assert report.passed

    def test_rank_orders_by_score(self, llm, task):
        problem = get_problem("sq_counter_ud")
        judge = JudgeAgent(llm)
        tb = golden_testbench(problem)
        good = judge.score(problem.golden, tb, problem.top)
        bad = judge.score("module broken (", tb, problem.top)
        ranked = judge.rank([("bad", bad), ("good", good)], k=1)
        assert ranked[0][0] == "good"

    def test_rank_stable_on_ties(self, llm):
        problem = get_problem("sq_counter_ud")
        judge = JudgeAgent(llm)
        tb = golden_testbench(problem)
        r1 = judge.score(problem.golden, tb, problem.top)
        r2 = judge.score(problem.golden, tb, problem.top)
        ranked = judge.rank([("first", r1), ("second", r2)], k=1)
        assert ranked[0][0] == "first"

    def test_review_returns_verdict(self, llm, task):
        problem = get_problem("sq_counter_ud")
        judge = JudgeAgent(llm)
        tb_agent = TestbenchAgent(llm)
        tb_text, tb = tb_agent.generate(task, LOW)
        buggy = problem.golden.replace("count + 8'd1", "count + 8'd2")
        report = judge.score(buggy, tb, problem.top)
        verdict = judge.review_testbench(task, tb_text, report, LOW)
        assert isinstance(verdict.correct, bool)
        assert verdict.rationale


class TestDebugAgent:
    def _buggy_candidate(self, llm, problem, task, tb):
        agent = RTLAgent(llm)
        params = SamplingParams(temperature=0.85, top_p=0.95, n=1, seed=3)
        for attempt in range(30):
            candidates = agent.sample_candidates(task, None, params, 4)
            for code in candidates:
                report = run_testbench(code, tb, problem.top)
                if report.error is None and 0 < report.score < 1:
                    return code, report
            params = SamplingParams(0.85, 0.95, 1, seed=100 + attempt)
        pytest.skip("could not find a buggy candidate")

    def test_debug_produces_compiling_code(self, llm):
        problem = get_problem("cb_kmap_mux")
        task = DesignTask.from_problem(problem)
        tb = golden_testbench(problem)
        code, report = self._buggy_candidate(llm, problem, task, tb)
        debug = DebugAgent(llm)
        fixed = debug.debug(task, code, report, DEBUG, use_checkpoints=True)
        assert lint(fixed, task.top).ok

    def test_checkpoint_feedback_in_prompt(self, llm):
        problem = get_problem("cb_kmap_mux")
        task = DesignTask.from_problem(problem)
        tb = golden_testbench(problem)
        code, report = self._buggy_candidate(llm, problem, task, tb)
        debug = DebugAgent(llm)
        debug.debug(task, code, report, DEBUG, use_checkpoints=True)
        prompt = debug.conversation.messages[0].content
        assert "State checkpoint log" in prompt

    def test_logonly_feedback_in_prompt(self, llm):
        problem = get_problem("cb_kmap_mux")
        task = DesignTask.from_problem(problem)
        tb = golden_testbench(problem)
        code, report = self._buggy_candidate(llm, problem, task, tb)
        debug = DebugAgent(llm)
        debug.debug(task, code, report, DEBUG, use_checkpoints=False)
        prompt = debug.conversation.messages[0].content
        assert "State checkpoint log" not in prompt
        assert "mismatch" in prompt


class TestSharedConversation:
    def test_single_history_merges_agents(self, llm, task):
        shared = Conversation(system_prompt="one agent for everything")
        tb_agent = TestbenchAgent(llm, shared)
        rtl_agent = RTLAgent(llm, shared)
        tb_agent.generate(task, LOW)
        turns_after_tb = shared.turns
        rtl_agent.generate_initial(task, None, LOW)
        assert shared.turns > turns_after_tb
        assert rtl_agent.conversation is tb_agent.conversation

    def test_separate_histories_stay_private(self, llm, task):
        tb_agent = TestbenchAgent(llm)
        rtl_agent = RTLAgent(llm)
        tb_agent.generate(task, LOW)
        assert rtl_agent.conversation.turns == 0
