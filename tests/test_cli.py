"""CLI smoke tests (python -m repro)."""

import pytest

from repro.cli import main


class TestCli:
    def test_problems_lists_all(self, capsys):
        assert main(["problems"]) == 0
        out = capsys.readouterr().out
        assert "cb_kmap_mux" in out and "me_fifo4" in out

    def test_lint_clean_file(self, tmp_path, capsys):
        path = tmp_path / "ok.v"
        path.write_text("module m (input a, output y); assign y = a; endmodule\n")
        assert main(["lint", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_broken_file(self, tmp_path, capsys):
        path = tmp_path / "bad.v"
        path.write_text("module m (input a, output y); assign y = b; endmodule\n")
        assert main(["lint", str(path)]) == 1
        assert "error" in capsys.readouterr().out

    def test_tb_run_with_vcd(self, tmp_path, capsys):
        design = tmp_path / "mux.v"
        design.write_text(
            "module mux (input [3:0] a, input [3:0] b, input s, "
            "output [3:0] y); assign y = s ? b : a; endmodule\n"
        )
        bench = tmp_path / "mux.tb"
        bench.write_text(
            "TESTBENCH comb\nINPUTS a b s\nOUTPUTS y\n"
            "STEP a=3 b=12 s=0 ; EXPECT y=3\nSTEP s=1 ; EXPECT y=12\n"
        )
        vcd = tmp_path / "mux.vcd"
        assert main(["tb", str(design), str(bench), "--vcd", str(vcd)]) == 0
        assert "score 1.000" in capsys.readouterr().out
        assert vcd.read_text().startswith("$date")

    def test_solve_easy_problem(self, capsys):
        assert main(["solve", "cb_and_or_gate", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "golden testbench: PASS" in out

    def test_eval_unknown_system(self, capsys):
        assert main(["eval", "martian"]) == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliRuntime:
    def test_eval_jobs_parity(self, capsys):
        argv = ["eval", "vanilla-claude", "--runs", "2", "--limit", "3"]
        assert main(argv + ["--jobs", "1"]) in (0,)
        serial_row = capsys.readouterr().out.splitlines()[0]
        assert main(argv + ["--jobs", "4"]) in (0,)
        parallel_row = capsys.readouterr().out.splitlines()[0]
        assert serial_row == parallel_row

    def test_eval_runs_env_default(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_RUNS", "2")
        assert main(["eval", "vanilla-claude", "--limit", "1", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "0/2 passed" in out or "2/2 passed" in out

    def test_eval_seed0_flag(self, capsys):
        argv = ["eval", "mage", "--runs", "1", "--limit", "2"]
        assert main(argv + ["--seed0", "5"]) == 0
        capsys.readouterr()

    def test_eval_verbose_reports_cache(self, capsys):
        argv = [
            "eval", "vanilla-claude", "--runs", "2", "--limit", "2", "--verbose"
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache lookups" in out
        assert "executor" in out

    def test_eval_no_cache(self, capsys):
        argv = [
            "eval", "vanilla-claude", "--runs", "1", "--limit", "1",
            "--no-cache", "--verbose",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "hits 0, misses 0" in out  # cache fully bypassed
        assert "simulations" in out

    def test_bench_reports_speedup_and_hits(self, capsys):
        argv = [
            "bench", "vanilla-claude", "--runs", "2", "--limit", "3",
            "--jobs", "2",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "hit-rate 100.0%" in out
        assert "deterministic   yes" in out

    def test_bench_unknown_system(self, capsys):
        assert main(["bench", "martian"]) == 2

    def test_bench_rejects_single_pass(self, capsys):
        assert main(["bench", "mage", "--repeat", "1", "--limit", "1"]) == 2
        assert "--repeat must be >= 2" in capsys.readouterr().out

    def test_eval_bad_jobs_clean_error(self, capsys):
        assert main(["eval", "mage", "--jobs", "0", "--limit", "1"]) == 2
        assert "jobs must be >= 1" in capsys.readouterr().out

    def test_eval_unknown_suite_clean_error(self, capsys):
        assert main(["eval", "mage", "nosuchsuite"]) == 2
        assert "unknown suite" in capsys.readouterr().out

    def test_eval_malformed_runs_env_falls_back(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_RUNS", "twenty")
        assert main(["eval", "vanilla-claude", "--limit", "1"]) == 0
        capsys.readouterr()

    def test_run_streams_events(self, capsys):
        assert main(["run", "cb_and_or_gate", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "run started: mage[" in out
        assert "stage step1 started" in out
        assert "run finished: PASS" in out
        assert "golden testbench: PASS" in out

    def test_run_registered_system(self, capsys):
        assert main(["run", "cb_mux2", "--system", "aivril"]) == 0
        out = capsys.readouterr().out
        assert "run started: two-agent[" in out
        assert "stage testbench started" in out

    def test_run_unknown_system(self, capsys):
        assert main(["run", "cb_mux2", "--system", "martian"]) == 2
        assert "unknown system" in capsys.readouterr().out

    def test_run_unknown_problem(self, capsys):
        assert main(["run", "no_such_problem"]) == 2
        assert "error" in capsys.readouterr().out

    def test_eval_progress_streams_cells(self, capsys):
        argv = [
            "eval", "vanilla-claude", "--runs", "2", "--limit", "2",
            "--progress",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "run 0:" in out and "run 1:" in out
        assert "batch finished:" in out

    def test_eval_solve_cache_flag(self, capsys):
        argv = [
            "eval", "vanilla-claude", "--runs", "1", "--limit", "2",
            "--solve-cache", "--verbose",
        ]
        assert main(argv) == 0
        capsys.readouterr()

    def test_cache_unconfigured(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_SOLVE_CACHE_DIR", raising=False)
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "no disk directory configured" in out
        assert "hint:" in out

    def test_cache_distinguishes_layers(self, capsys, monkeypatch):
        """Both cache layers report separately: disk line + counters."""
        monkeypatch.delenv("REPRO_SIM_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_SOLVE_CACHE_DIR", raising=False)
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        sim_at = out.index("simulation cache")
        solve_at = out.index("solve-cell cache")
        assert sim_at < solve_at
        sim_section = out[sim_at:solve_at]
        solve_section = out[solve_at:]
        for section in (sim_section, solve_section):
            assert "disk:" in section
            assert "this process:" in section

    def test_cache_reports_directories(self, capsys, tmp_path):
        sim_dir = tmp_path / "sim"
        solve_dir = tmp_path / "solve"
        assert (
            main([
                "bench", "vanilla-itertl", "--runs", "1", "--limit", "2",
                "--cache-dir", str(sim_dir),
                "--solve-cache", "--solve-cache-dir", str(solve_dir),
            ])
            == 0
        )
        capsys.readouterr()
        argv = ["cache", "--sim-dir", str(sim_dir), "--solve-dir", str(solve_dir)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "simulation cache" in out and "solve-cell cache" in out
        assert "entries" in out and "0 entries" not in out

    def test_bench_solve_cache_speedup_gate(self, capsys):
        argv = [
            "bench", "mage", "--runs", "2", "--limit", "3",
            "--solve-cache", "--min-speedup", "2.0",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "solve cells" in out
        assert "hit-rate 100.0%" in out
        assert "deterministic   yes" in out

    def test_bench_min_speedup_failure(self, capsys):
        argv = [
            "bench", "vanilla-itertl", "--runs", "1", "--limit", "1",
            "--no-cache", "--min-speedup", "1000000",
        ]
        assert main(argv) == 1
        assert "below required" in capsys.readouterr().out

    def test_bench_process_executor_shares_cache(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        argv = [
            "bench", "vanilla-itertl", "--runs", "1", "--limit", "2",
            "--jobs", "2",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "sharing the cache via" in out
        assert "hit-rate 100.0%" in out  # warm pass saw the cold pass's work


def _event_lines(text: str) -> list[str]:
    return [line for line in text.splitlines() if line.startswith("  | ")]


class TestCliRollout:
    def test_eval_rollout_row_matches_serial(self, capsys):
        argv = ["eval", "mage", "--runs", "2", "--limit", "3"]
        assert main(argv) == 0
        serial_row = capsys.readouterr().out.splitlines()[0]
        assert main(argv + ["--rollout-batch", "4"]) == 0
        rollout_row = capsys.readouterr().out.splitlines()[0]
        assert rollout_row == serial_row

    def test_eval_rollout_verbose_reports_executor(self, capsys):
        argv = [
            "eval", "mage", "--runs", "1", "--limit", "2",
            "--rollout-batch", "4", "--verbose",
        ]
        assert main(argv) == 0
        assert "rollout[4]" in capsys.readouterr().out

    def test_eval_rollout_rejected_with_service(self, capsys):
        argv = [
            "eval", "mage", "--limit", "1",
            "--service", "127.0.0.1:1", "--rollout-batch", "2",
        ]
        assert main(argv) == 2
        assert "--rollout-batch" in capsys.readouterr().out

    def test_bench_rollout_writes_gate_file(self, capsys, tmp_path):
        # No --min-speedup here: wall-clock gates belong to the CI bench
        # step, where the run is not contending with the test suite.
        out_path = tmp_path / "BENCH_rollout.json"
        argv = [
            "bench", "mage", "--runs", "2", "--limit", "4", "--rollout",
            "--rollout-batch", "4", "--bench-out", str(out_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "rollout[4]" in out
        assert "deterministic   yes" in out
        import json

        payload = json.loads(out_path.read_text())
        assert payload["rollout_batch"] == 4
        assert payload["deterministic"] is True
        # The misleading single "speedup" key is gone: cold- and
        # warm-relative speedups are recorded explicitly.
        assert "speedup" not in payload and "batching_speedup" not in payload
        assert payload["speedup_vs_cold"] > 0
        assert payload["speedup_vs_warm"] > 0
        assert payload["jobs"] >= 1  # resolved fan-out is reported
        # Fixed widths leave speculation off; the key is still present.
        assert payload["speculation"].get("launched", 0) == 0
        assert payload["cache_hit_rate"] == 1.0  # warm pass fully served

    def test_bench_rollout_rejected_with_service(self, capsys):
        argv = ["bench", "mage", "--limit", "1", "--service", "--rollout"]
        assert main(argv) == 2
        assert "--rollout" in capsys.readouterr().out

    def test_bench_rollout_batch_requires_rollout(self, capsys):
        argv = ["bench", "mage", "--limit", "1", "--rollout-batch", "4"]
        assert main(argv) == 2
        assert "--rollout-batch only applies" in capsys.readouterr().out

    def test_serve_rollout_batch_flag_wired(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--rollout-batch", "3"])
        assert args.rollout_batch == 3


class TestCliServiceMode:
    @pytest.fixture()
    def server_addr(self):
        from repro.service import SolveServer

        with SolveServer(workers=2) as server:
            yield server.address

    def test_run_warm_solve_cache(self, capsys, tmp_path):
        """Second `run` over a warm solve-cell cache replays the same
        event stream and reports the hit."""
        argv = [
            "run", "cb_kmap_mux", "--seed", "0",
            "--solve-cache-dir", str(tmp_path / "solve"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "solve-cell cache: miss" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "solve-cell cache: hit" in warm
        assert _event_lines(warm) == _event_lines(cold)
        assert _event_lines(warm)  # the stream actually replayed
        assert "golden testbench: PASS" in warm

    def test_run_solve_cache_in_memory_flag(self, capsys):
        assert main(["run", "cb_mux2", "--solve-cache"]) == 0
        assert "solve-cell cache: miss" in capsys.readouterr().out

    def test_submit_cold_then_warm(self, capsys, server_addr):
        argv = ["submit", "mage", "cb_and_or_gate", "--addr", server_addr]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "cache: miss" in cold
        assert "run started: mage[" in cold  # events streamed
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "cache: hit" in warm
        assert _event_lines(warm) == _event_lines(cold)

    def test_submit_quiet_suppresses_events(self, capsys, server_addr):
        argv = [
            "submit", "mage", "cb_mux2", "--addr", server_addr, "--quiet"
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert not _event_lines(out)
        assert "PASS" in out

    def test_submit_unreachable_server(self, capsys):
        argv = ["submit", "mage", "cb_mux2", "--addr", "127.0.0.1:1"]
        assert main(argv) == 2
        assert "error" in capsys.readouterr().out

    def test_eval_service_matches_local_row(self, capsys, server_addr):
        argv = ["eval", "mage", "--runs", "1", "--limit", "3"]
        assert main(argv) == 0
        local_row = capsys.readouterr().out.splitlines()[0]
        assert main(argv + ["--service", server_addr]) == 0
        service_row = capsys.readouterr().out.splitlines()[0]
        assert service_row == local_row

    def test_eval_service_verbose_and_progress(self, capsys, server_addr):
        argv = [
            "eval", "mage", "--runs", "1", "--limit", "2",
            "--service", server_addr, "--verbose", "--progress",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "shards" in out
        assert "cells" in out
        assert "batch finished:" in out

    def test_eval_service_bad_address(self, capsys):
        argv = ["eval", "mage", "--limit", "1", "--service", "nonsense"]
        assert main(argv) == 2
        assert "error" in capsys.readouterr().out

    def test_eval_service_rejects_local_executor_flags(self, capsys):
        argv = [
            "eval", "mage", "--limit", "1", "--jobs", "4",
            "--service", "127.0.0.1:7341",
        ]
        assert main(argv) == 2
        out = capsys.readouterr().out
        assert "--jobs" in out and "cannot be combined with --service" in out

    def test_cache_service_reports_layers(self, capsys, server_addr):
        assert main(["submit", "mage", "cb_mux2", "--addr", server_addr,
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["cache", "--service", server_addr]) == 0
        out = capsys.readouterr().out
        assert "simulation cache" in out and "solve-cell cache" in out
        assert "executed 1" in out

    def test_cache_service_unreachable(self, capsys):
        assert main(["cache", "--service", "127.0.0.1:1"]) == 2
        assert "cannot reach service" in capsys.readouterr().out

    def test_serve_stop_drains_server(self, capsys):
        from repro.service import SolveServer

        server = SolveServer(workers=1).start()
        assert main(["serve", "--stop", server.address]) == 0
        assert "draining" in capsys.readouterr().out
        assert server.wait(timeout=30)

    def test_serve_stop_unreachable(self, capsys):
        assert main(["serve", "--stop", "127.0.0.1:1"]) == 2
        assert "error" in capsys.readouterr().out

    def test_bench_service_rejects_local_pass_flags(self, capsys):
        argv = [
            "bench", "mage", "--limit", "1", "--service", "--repeat", "4",
        ]
        assert main(argv) == 2
        out = capsys.readouterr().out
        assert "--repeat" in out and "cannot be combined with --service" in out

    def test_bench_service_writes_report(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_service.json"
        argv = [
            "bench", "mage", "--runs", "1", "--limit", "2", "--service",
            "--bench-out", str(out_path), "--min-speedup", "1.0",
        ]
        assert main(argv) == 0
        printed = capsys.readouterr().out
        assert "service cold" in printed and "service warm" in printed
        assert "deterministic   yes" in printed
        import json

        payload = json.loads(out_path.read_text())
        assert payload["deterministic"] is True
        assert payload["service_warm"]["cached_cells"] == payload["cells"]
        assert payload["warm_speedup"] > 0
        assert payload["in_process"]["wall_seconds"] > 0
        assert payload["service_cold"]["latency_mean_ms"] > 0


class TestCliCacheFabric:
    def _populate(self, tmp_path):
        sim_dir = tmp_path / "sim"
        solve_dir = tmp_path / "solve"
        assert (
            main([
                "bench", "vanilla-itertl", "--runs", "1", "--limit", "2",
                "--cache-dir", str(sim_dir),
                "--solve-cache", "--solve-cache-dir", str(solve_dir),
            ])
            == 0
        )
        return sim_dir, solve_dir

    def test_cache_clear_one_layer(self, capsys, tmp_path):
        sim_dir, solve_dir = self._populate(tmp_path)
        capsys.readouterr()
        argv = [
            "cache", "--clear", "--layer", "solve",
            "--sim-dir", str(sim_dir), "--solve-dir", str(solve_dir),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "solve: cleared" in out and "sim:" not in out
        assert not list(solve_dir.glob("*.pkl"))
        assert list(sim_dir.glob("*.pkl"))  # the other layer untouched

    def test_cache_clear_both_layers(self, capsys, tmp_path):
        sim_dir, solve_dir = self._populate(tmp_path)
        capsys.readouterr()
        argv = [
            "cache", "--clear",
            "--sim-dir", str(sim_dir), "--solve-dir", str(solve_dir),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "sim: cleared" in out and "solve: cleared" in out
        assert not list(sim_dir.glob("*.pkl"))
        assert not list(solve_dir.glob("*.pkl"))

    def test_cache_clear_unconfigured_errors(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_SOLVE_CACHE_DIR", raising=False)
        assert main(["cache", "--clear"]) == 2
        assert "nothing to clear" in capsys.readouterr().out

    def test_cache_reports_per_tier_lines(self, capsys, tmp_path):
        sim_dir, solve_dir = self._populate(tmp_path)
        capsys.readouterr()
        argv = ["cache", "--sim-dir", str(sim_dir), "--solve-dir", str(solve_dir)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "tier memory" in out
        assert "peer 0" in out  # counter line includes peer attribution

    def test_eval_cache_peer_rejected_with_service(self, capsys):
        argv = [
            "eval", "mage", "--limit", "1",
            "--service", "127.0.0.1:1", "--cache-peer", "127.0.0.1:2",
        ]
        assert main(argv) == 2
        assert "--cache-peer" in capsys.readouterr().out

    def test_eval_bad_cache_peer_address(self, capsys):
        argv = ["eval", "mage", "--limit", "1", "--cache-peer", "nonsense"]
        assert main(argv) == 2
        assert "bad service address" in capsys.readouterr().out

    def test_bench_peer_cache_rejected_with_service(self, capsys):
        argv = ["bench", "mage", "--limit", "1", "--service", "--peer-cache"]
        assert main(argv) == 2
        assert "--peer-cache" in capsys.readouterr().out

    def test_bench_peer_cache_rejected_with_rollout(self, capsys):
        argv = ["bench", "mage", "--limit", "1", "--peer-cache", "--rollout"]
        assert main(argv) == 2
        assert "cannot be combined with --peer-cache" in capsys.readouterr().out

    def test_eval_via_live_peer_matches_local_row(self, capsys):
        """serve A -> warm it -> cold eval B --cache-peer A: identical
        row, peer hits reported."""
        from repro.service import SolveServer

        argv = ["eval", "mage", "--runs", "1", "--limit", "2"]
        assert main(argv + ["--jobs", "1"]) == 0
        local_row = capsys.readouterr().out.splitlines()[0]
        with SolveServer(workers=2) as server:
            assert main(argv + ["--service", server.address]) == 0
            capsys.readouterr()
            assert (
                main(
                    argv
                    + [
                        "--solve-cache", "--verbose",
                        "--cache-peer", server.address,
                    ]
                )
                == 0
            )
            out = capsys.readouterr().out
        lines = out.splitlines()
        row = next(line for line in lines if "Pass@1" in line)
        assert row == local_row
        assert any("peer hits" in line for line in lines)

    def test_bench_peer_cache_writes_gate_file(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_cache.json"
        argv = [
            "bench", "mage", "--runs", "1", "--limit", "2", "--peer-cache",
            "--bench-out", str(out_path), "--min-speedup", "1.0",
        ]
        assert main(argv) == 0
        printed = capsys.readouterr().out
        assert "cold via peer" in printed
        assert "deterministic   yes" in printed
        import json

        payload = json.loads(out_path.read_text())
        assert payload["deterministic"] is True
        assert payload["peer_solve_hits"] > 0
        assert payload["speedup"] > 0
