"""CLI smoke tests (python -m repro)."""

import pytest

from repro.cli import main


class TestCli:
    def test_problems_lists_all(self, capsys):
        assert main(["problems"]) == 0
        out = capsys.readouterr().out
        assert "cb_kmap_mux" in out and "me_fifo4" in out

    def test_lint_clean_file(self, tmp_path, capsys):
        path = tmp_path / "ok.v"
        path.write_text("module m (input a, output y); assign y = a; endmodule\n")
        assert main(["lint", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_broken_file(self, tmp_path, capsys):
        path = tmp_path / "bad.v"
        path.write_text("module m (input a, output y); assign y = b; endmodule\n")
        assert main(["lint", str(path)]) == 1
        assert "error" in capsys.readouterr().out

    def test_tb_run_with_vcd(self, tmp_path, capsys):
        design = tmp_path / "mux.v"
        design.write_text(
            "module mux (input [3:0] a, input [3:0] b, input s, "
            "output [3:0] y); assign y = s ? b : a; endmodule\n"
        )
        bench = tmp_path / "mux.tb"
        bench.write_text(
            "TESTBENCH comb\nINPUTS a b s\nOUTPUTS y\n"
            "STEP a=3 b=12 s=0 ; EXPECT y=3\nSTEP s=1 ; EXPECT y=12\n"
        )
        vcd = tmp_path / "mux.vcd"
        assert main(["tb", str(design), str(bench), "--vcd", str(vcd)]) == 0
        assert "score 1.000" in capsys.readouterr().out
        assert vcd.read_text().startswith("$date")

    def test_solve_easy_problem(self, capsys):
        assert main(["solve", "cb_and_or_gate", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "golden testbench: PASS" in out

    def test_eval_unknown_system(self, capsys):
        assert main(["eval", "martian"]) == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
