"""Figure data collectors."""

from repro.core.config import MAGEConfig
from repro.evalsets import get_problem
from repro.evaluation.figures import (
    MismatchDistribution,
    ScoreSeries,
    best_candidate_mismatch,
    collect_score_series,
)


class TestMismatchDistribution:
    def test_summary_statistics(self):
        dist = MismatchDistribution(label="test")
        dist.per_problem = {"a": 0.1, "b": 0.3, "c": 0.2}
        summary = dist.summary()
        assert "mean=0.200" in summary and "n=3" in summary

    def test_values_sorted_by_problem(self):
        dist = MismatchDistribution(label="test")
        dist.per_problem = {"b": 0.2, "a": 0.1}
        assert dist.values() == [0.1, 0.2]

    def test_best_candidate_mismatch_bounds(self):
        problem = get_problem("cb_mux4")
        mismatch = best_candidate_mismatch(problem, 0.85, 0.95, 3, seed=0)
        assert 0.0 <= mismatch <= 1.0

    def test_more_candidates_never_worse(self):
        problem = get_problem("fs_seq_det_110")
        one = best_candidate_mismatch(problem, 0.85, 0.95, 1, seed=0)
        many = best_candidate_mismatch(problem, 0.85, 0.95, 6, seed=0)
        # Not guaranteed pointwise (different rng streams), but the
        # many-candidate best must be a valid mismatch value.
        assert 0.0 <= many <= 1.0 and 0.0 <= one <= 1.0


class TestScoreSeries:
    def test_add_round_grows(self):
        series = ScoreSeries()
        series.add_round(0, [0.5, 0.6])
        series.add_round(2, [1.0])
        assert series.rounds[0] == [0.5, 0.6]
        assert series.rounds[1] == []
        assert series.rounds[2] == [1.0]

    def test_round_means_skip_empty(self):
        series = ScoreSeries()
        series.add_round(0, [0.4, 0.6])
        series.add_round(2, [0.9])
        assert series.round_means() == [0.5, 0.9]

    def test_collect_on_small_subset(self):
        problems = [get_problem("cb_kmap_mux"), get_problem("cb_mux2")]
        series = collect_score_series(
            problems, MAGEConfig.high_temperature(), seed=0
        )
        # cb_mux2 passes directly; only problems entering Step 4 count.
        assert len(series.initial_scores) == len(series.sampled_best_scores)
