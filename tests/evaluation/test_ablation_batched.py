"""Ablation arms and figure collectors under cached/batched execution.

The Table III arms and the Fig. 3/4 config switches were only ever
exercised through the serial path; these tests drive them through
``evaluate_many`` with rollout batching and the solve-cell cache, and
check the figure collectors fold identical series out of live, batched,
and cache-replayed event streams.
"""

from functools import partial

import pytest

from repro.baselines.registry import MAGESystem
from repro.core.events import ListSink
from repro.core.task import DesignTask
from repro.evalsets import get_problem, golden_testbench
from repro.evaluation.ablation import (
    TABLE3_ARMS,
    checkpoint_ablation_configs,
    sampling_ablation_configs,
)
from repro.evaluation.figures import ScoreSeries
from repro.runtime.batch import evaluate_many
from repro.runtime.cache import (
    SimulationCache,
    SolveCellCache,
    system_fingerprint,
)
from repro.runtime.executor import SerialExecutor, ThreadExecutor
from repro.runtime.rollout import RolloutRequest, RolloutScheduler

PROBLEMS = [get_problem("cb_kmap_mux"), get_problem("fs_vending")]


class TestAblationArmsBatched:
    @pytest.mark.parametrize("arm", TABLE3_ARMS, ids=lambda a: a.key)
    def test_arm_rows_identical_serial_vs_rollout(self, arm):
        with SerialExecutor() as executor:
            serial, _ = evaluate_many(
                arm.factory,
                "verilogeval-v2",
                runs=2,
                problems=PROBLEMS,
                executor=executor,
                cache=SimulationCache(),
            )
        with ThreadExecutor(2) as executor:
            batched, _ = evaluate_many(
                arm.factory,
                "verilogeval-v2",
                runs=2,
                problems=PROBLEMS,
                executor=executor,
                cache=SimulationCache(),
                rollout_batch=4,
            )
        assert batched.outcomes == serial.outcomes

    @pytest.mark.parametrize("arm", TABLE3_ARMS, ids=lambda a: a.key)
    def test_arm_is_solve_cacheable(self, arm):
        """Every Table III arm has a stable fingerprint, and a repeated
        batched sweep re-serves all its cells from the solve cache."""
        assert system_fingerprint(arm.factory) is not None
        solve_cache = SolveCellCache()
        passes = []
        for _ in range(2):
            with SerialExecutor() as executor:
                result, report = evaluate_many(
                    arm.factory,
                    "verilogeval-v2",
                    runs=1,
                    problems=PROBLEMS,
                    executor=executor,
                    cache=SimulationCache(),
                    solve_cache=solve_cache,
                    rollout_batch=4,
                )
            passes.append((result, report))
        (cold, cold_report), (warm, warm_report) = passes
        assert warm.outcomes == cold.outcomes
        assert cold_report.solve_cache.misses == len(PROBLEMS)
        assert warm_report.solve_cache.hits == len(PROBLEMS)

    @pytest.mark.parametrize(
        "configs",
        [checkpoint_ablation_configs, sampling_ablation_configs],
        ids=["checkpoints", "sampling"],
    )
    def test_config_switch_grids_identical_under_rollout(self, configs):
        for label, config in configs().items():
            factory = partial(MAGESystem, config)
            with SerialExecutor() as executor:
                serial, _ = evaluate_many(
                    factory,
                    "verilogeval-v2",
                    runs=1,
                    seed0=2,
                    problems=PROBLEMS,
                    executor=executor,
                    cache=SimulationCache(),
                    name=label,
                )
            with ThreadExecutor(2) as executor:
                batched, _ = evaluate_many(
                    factory,
                    "verilogeval-v2",
                    runs=1,
                    seed0=2,
                    problems=PROBLEMS,
                    executor=executor,
                    cache=SimulationCache(),
                    name=label,
                    rollout_batch=4,
                )
            assert batched.outcomes == serial.outcomes, label


class TestFiguresFromBatchedStreams:
    def _series(self, events_per_run):
        series = ScoreSeries()
        for events in events_per_run:
            series.fold_events(events)
        return series

    def _snapshot(self, series):
        return (
            series.initial_scores,
            series.sampled_best_scores,
            series.rounds,
        )

    def test_series_from_rollout_equals_serial(self):
        """Fig. 4 collectors read identical series out of a batched
        run's event stream and a serial run's."""
        problem = get_problem("fs_vending")
        serial_sink = ListSink()
        MAGESystem().solve(
            DesignTask.from_problem(problem), seed=2, sink=serial_sink
        )
        request = RolloutRequest(
            index=0,
            factory=MAGESystem,
            problem=problem,
            golden_tb=golden_testbench(problem),
            seed=2,
        )
        with ThreadExecutor(2) as executor:
            scheduler = RolloutScheduler(
                executor=executor, cache=SimulationCache()
            )
            result = scheduler.run([request])[0]
        assert result.error is None
        serial = self._series([serial_sink.events])
        batched = self._series([result.events])
        assert self._snapshot(batched) == self._snapshot(serial)
        # The run entered Step 4, so the figure actually has data.
        assert serial.initial_scores and serial.sampled_best_scores

    def test_series_from_cache_replay_equals_live(self):
        """A solve-cell cache hit replays a stream the collectors fold
        into exactly the live series (warm sweeps can draw figures)."""
        problem = get_problem("fs_vending")
        factory = MAGESystem
        solve_cache = SolveCellCache()
        scheduler = RolloutScheduler(
            executor=SerialExecutor(),
            cache=SimulationCache(),
            solve_cache=solve_cache,
        )
        fingerprint = system_fingerprint(factory)
        request = RolloutRequest(
            index=0,
            factory=factory,
            problem=problem,
            golden_tb=golden_testbench(problem),
            seed=2,
            fingerprint=fingerprint,
        )
        cold = scheduler.run([request])[0]
        warm = scheduler.run([request])[0]
        assert not cold.solve_cached and warm.solve_cached
        assert self._snapshot(self._series([warm.events])) == self._snapshot(
            self._series([cold.events])
        )
