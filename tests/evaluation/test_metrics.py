"""pass@k estimator (Eq. 7) unit and property tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation.metrics import mean_pass_at_k, pass_at_k


class TestPassAtK:
    def test_all_pass(self):
        assert pass_at_k(10, 10, 1) == 1.0

    def test_none_pass(self):
        assert pass_at_k(10, 0, 1) == 0.0

    def test_single_run(self):
        assert pass_at_k(1, 1, 1) == 1.0
        assert pass_at_k(1, 0, 1) == 0.0

    def test_pass_at_1_equals_fraction(self):
        # With k=1 the estimator reduces to c/n.
        assert pass_at_k(20, 5, 1) == pytest.approx(5 / 20)

    def test_pass_at_k_examples(self):
        # 1 - C(8,2)/C(10,2) = 1 - 28/45
        assert pass_at_k(10, 2, 2) == pytest.approx(1 - 28 / 45)

    def test_k_greater_than_failures_is_one(self):
        assert pass_at_k(5, 4, 2) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            pass_at_k(0, 0, 1)
        with pytest.raises(ValueError):
            pass_at_k(5, 6, 1)
        with pytest.raises(ValueError):
            pass_at_k(5, 2, 6)


@given(st.integers(1, 50), st.data())
def test_property_bounds(n, data):
    c = data.draw(st.integers(0, n))
    k = data.draw(st.integers(1, n))
    value = pass_at_k(n, c, k)
    assert 0.0 <= value <= 1.0


@given(st.integers(2, 50), st.data())
def test_property_monotone_in_c(n, data):
    k = data.draw(st.integers(1, n))
    c = data.draw(st.integers(0, n - 1))
    assert pass_at_k(n, c + 1, k) >= pass_at_k(n, c, k)


@given(st.integers(2, 50), st.data())
def test_property_monotone_in_k(n, data):
    c = data.draw(st.integers(0, n))
    k = data.draw(st.integers(1, n - 1))
    assert pass_at_k(n, c, k + 1) >= pass_at_k(n, c, k)


@given(st.integers(1, 30), st.data())
def test_property_pass1_is_mean(n, data):
    c = data.draw(st.integers(0, n))
    assert pass_at_k(n, c, 1) == pytest.approx(c / n)


class TestMean:
    def test_mean(self):
        assert mean_pass_at_k([(1, 1), (1, 0)], 1) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_pass_at_k([], 1)
