"""Evaluation harness over small problem subsets (kept quick)."""

import os

import pytest

from repro.baselines import VanillaLLM
from repro.core.config import MAGEConfig
from repro.evalsets import get_problem
from repro.evaluation.ablation import (
    TABLE3_ARMS,
    checkpoint_ablation_configs,
    sampling_ablation_configs,
)
from repro.evaluation.harness import (
    default_runs,
    evaluate_mage,
    evaluate_system,
)
from repro.llm.interface import SamplingParams

EASY = [get_problem(p) for p in ["cb_and_or_gate", "cb_xor_parity", "sq_dff_ar"]]
MIXED = [get_problem(p) for p in ["cb_mux2", "cb_kmap_mux", "fs_seq_det_110"]]


def low():
    return SamplingParams(temperature=0.0, top_p=0.01, n=1)


class TestEvaluateSystem:
    def test_vanilla_on_easy_problems(self):
        result = evaluate_system(
            lambda: VanillaLLM("claude-3.5-sonnet", low()),
            "verilogeval-v2",
            runs=1,
            problems=EASY,
        )
        assert result.pass_at_1 == 1.0
        assert len(result.outcomes) == 3

    def test_result_accounting(self):
        result = evaluate_system(
            lambda: VanillaLLM("itertl-ft", low()),
            "verilogeval-v2",
            runs=2,
            problems=MIXED,
        )
        for outcome in result.outcomes:
            assert outcome.runs == 2
            assert 0 <= outcome.passes <= 2
            assert len(outcome.scores) == 2
        assert 0.0 <= result.pass_at_1 <= 1.0

    def test_failures_listed(self):
        result = evaluate_system(
            lambda: VanillaLLM("itertl-ft", low()),
            "verilogeval-v2",
            runs=1,
            problems=MIXED,
        )
        for pid in result.failures():
            assert pid in {p.id for p in MIXED}

    def test_progress_callback(self):
        lines = []
        evaluate_system(
            lambda: VanillaLLM("claude-3.5-sonnet", low()),
            "verilogeval-v2",
            runs=1,
            problems=EASY[:1],
            progress=lines.append,
        )
        assert len(lines) == 1

    def test_render_row(self):
        result = evaluate_system(
            lambda: VanillaLLM("claude-3.5-sonnet", low()),
            "verilogeval-v2",
            runs=1,
            problems=EASY[:1],
        )
        assert "Pass@1" in result.render_row()


class TestEvaluateMage:
    def test_mage_on_mixed_subset(self):
        result = evaluate_mage(
            MAGEConfig.high_temperature(),
            "verilogeval-v2",
            runs=1,
            problems=MIXED,
        )
        assert result.pass_at_1 >= 2 / 3  # near-perfect on this subset


class TestDefaultRuns:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_RUNS", "7")
        assert default_runs() == 7

    def test_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_EVAL_RUNS", raising=False)
        assert default_runs(4) == 4


class TestAblationConfigs:
    def test_table3_arms(self):
        assert [arm.key for arm in TABLE3_ARMS] == [
            "vanilla",
            "single-agent",
            "multi-agent",
        ]
        for arm in TABLE3_ARMS:
            system = arm.factory()
            assert hasattr(system, "solve")

    def test_checkpoint_ablation(self):
        configs = checkpoint_ablation_configs()
        assert configs["with-checkpoints"].use_checkpoints
        assert not configs["without-checkpoints"].use_checkpoints

    def test_sampling_ablation(self):
        configs = sampling_ablation_configs()
        assert configs["with-sampling"].use_sampling
        assert not configs["without-sampling"].use_sampling
