"""Generalization: MAGE on problems outside the calibration suites.

The model profiles were fitted on the two VerilogEval-style suites
only; the ``rtllm-like`` suite is held out.  MAGE's advantage must
transfer -- if it only worked on the problems the profiles were tuned
against, the pipeline effects would be calibration artifacts.
"""

from repro.core.config import MAGEConfig
from repro.evaluation.harness import evaluate_mage, evaluate_system
from repro.baselines import VanillaLLM
from repro.llm.interface import SamplingParams


def test_mage_transfers_to_held_out_suite():
    mage = evaluate_mage(MAGEConfig.high_temperature(), "rtllm-like", runs=1)
    vanilla = evaluate_system(
        lambda: VanillaLLM(
            "claude-3.5-sonnet", SamplingParams(temperature=0.0, top_p=0.01, n=1)
        ),
        "rtllm-like",
        runs=1,
    )
    assert mage.pass_at_1 >= vanilla.pass_at_1, (
        f"MAGE ({mage.percent:.1f}%) must not lose to vanilla "
        f"({vanilla.percent:.1f}%) on held-out problems"
    )
    assert mage.pass_at_1 >= 0.7, f"MAGE too weak on held-out suite: {mage.percent:.1f}%"
