"""LLM-agnostic interface layer."""

import pytest

from repro.llm.interface import (
    HIGH_TEMPERATURE,
    LOW_TEMPERATURE,
    ChatMessage,
    Conversation,
    SamplingParams,
    create_llm,
    register_llm,
)


class TestChatMessage:
    def test_valid_roles(self):
        for role in ("system", "user", "assistant"):
            assert ChatMessage(role, "x").role == role

    def test_invalid_role(self):
        with pytest.raises(ValueError):
            ChatMessage("robot", "x")


class TestSamplingParams:
    def test_paper_presets(self):
        assert LOW_TEMPERATURE.temperature == 0.0
        assert LOW_TEMPERATURE.top_p == 0.01
        assert LOW_TEMPERATURE.n == 1
        assert HIGH_TEMPERATURE.temperature == 0.85
        assert HIGH_TEMPERATURE.top_p == 0.95
        assert HIGH_TEMPERATURE.n == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingParams(temperature=-0.1)
        with pytest.raises(ValueError):
            SamplingParams(top_p=0.0)
        with pytest.raises(ValueError):
            SamplingParams(n=0)


class TestConversation:
    def test_message_ordering(self):
        conv = Conversation(system_prompt="sys")
        conv.add_user("q1")
        conv.add_assistant("a1")
        conv.add_user("q2")
        roles = [m.role for m in conv.as_list()]
        assert roles == ["system", "user", "assistant", "user"]

    def test_turns_excludes_system(self):
        conv = Conversation(system_prompt="sys")
        assert conv.turns == 0
        conv.add_user("q")
        assert conv.turns == 1

    def test_transcript_chars(self):
        conv = Conversation(system_prompt="abc")
        conv.add_user("de")
        assert conv.transcript_chars() == 5


class TestProviderRegistry:
    def test_custom_provider(self):
        class Stub:
            model_name = "stub"

            def complete(self, messages, params):
                return "ok"

            def sample(self, messages, params):
                return ["ok"] * params.n

        register_llm("stub-provider", lambda: Stub())
        llm = create_llm("stub-provider")
        assert llm.complete([], LOW_TEMPERATURE) == "ok"
