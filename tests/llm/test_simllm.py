"""SimLLM behaviour: determinism, task routing, quality distributions."""

import pytest

from repro.evalsets import get_problem, golden_testbench
from repro.llm import ChatMessage, SamplingParams, SimLLM
from repro.llm.genome import GenomeRegistry
from repro.llm.interface import create_llm
from repro.llm.profiles import get_profile
from repro.llm.simllm import extract_code_block, extract_tb_block
from repro.tb.runner import run_testbench
from repro.tb.stimulus import parse_testbench

LOW = SamplingParams(temperature=0.0, top_p=0.01, n=1)
HIGH = SamplingParams(temperature=0.85, top_p=0.95, n=4, seed=1)


def gen_prompt(problem):
    return [
        ChatMessage("system", "You are an expert RTL engineer."),
        ChatMessage(
            "user",
            "Write a synthesizable Verilog module that implements the "
            f"specification.\n\n## Specification\n{problem.spec}\n",
        ),
    ]


def tb_prompt(problem):
    return [
        ChatMessage(
            "user",
            "Write a testbench in the TESTBENCH format.\n\n"
            f"## Specification\n{problem.spec}\n",
        )
    ]


class TestExtraction:
    def test_extract_code_block(self):
        text = "intro\n```verilog\nmodule m; endmodule\n```\ntail"
        assert "module m" in extract_code_block(text)

    def test_extract_last_code_block(self):
        text = (
            "```verilog\nmodule a; endmodule\n```\n"
            "```verilog\nmodule b; endmodule\n```"
        )
        assert "module b" in extract_code_block(text)

    def test_extract_skips_testbench_blocks(self):
        text = "```testbench\nTESTBENCH comb\n```"
        assert extract_code_block(text) is None
        assert "TESTBENCH" in extract_tb_block(text)

    def test_no_block(self):
        assert extract_code_block("plain text") is None


class TestDeterminism:
    def test_t0_identical_across_seeds_and_calls(self):
        problem = get_problem("fs_seq_det_1011")
        llm = SimLLM("claude-3.5-sonnet")
        a = llm.complete(gen_prompt(problem), LOW)
        b = llm.complete(gen_prompt(problem), SamplingParams(0.0, 0.01, 1, seed=99))
        assert a == b

    def test_t0_n_copies_identical(self):
        problem = get_problem("cb_mux4")
        llm = SimLLM("claude-3.5-sonnet")
        outs = llm.sample(gen_prompt(problem), SamplingParams(0.0, 0.01, 4))
        assert len(set(outs)) == 1

    def test_t0_modal_across_prompt_variations(self):
        # Cosmetic prompt changes must not grant an independent redraw.
        problem = get_problem("fs_vending")
        llm = SimLLM("claude-3.5-sonnet")
        a = extract_code_block(llm.complete(gen_prompt(problem), LOW))
        msgs = gen_prompt(problem)
        msgs.insert(1, ChatMessage("user", "Please be extra careful."))
        b = extract_code_block(llm.complete(msgs, LOW))
        assert a == b

    def test_high_t_samples_differ(self):
        problem = get_problem("fs_vending")
        llm = SimLLM("claude-3.5-sonnet")
        outs = llm.sample(gen_prompt(problem), HIGH)
        assert len(set(outs)) > 1

    def test_high_t_reproducible_with_same_seed(self):
        problem = get_problem("fs_vending")
        a = SimLLM("claude-3.5-sonnet").sample(gen_prompt(problem), HIGH)
        b = SimLLM("claude-3.5-sonnet").sample(gen_prompt(problem), HIGH)
        assert a == b


class TestGenerationQuality:
    def test_weak_model_generates_more_faults(self):
        problem = get_problem("fs_arbiter2")
        strong = SimLLM("claude-3.5-sonnet")
        weak = SimLLM("itertl-ft")
        tb = golden_testbench(problem)

        def mean_score(llm, runs=12):
            total = 0.0
            for seed in range(runs):
                params = SamplingParams(0.7, 0.95, 1, seed=seed)
                code = extract_code_block(llm.complete(gen_prompt(problem), params))
                total += run_testbench(code, tb, problem.top).score
            return total / runs

        assert mean_score(strong) > mean_score(weak)

    def test_generated_code_is_registered(self):
        problem = get_problem("cb_mux4")
        llm = SimLLM("claude-3.5-sonnet")
        code = extract_code_block(llm.complete(gen_prompt(problem), LOW))
        assert llm.registry.lookup_code(code) is not None

    def test_unknown_spec_degrades_gracefully(self):
        llm = SimLLM("claude-3.5-sonnet")
        reply = llm.complete(
            [ChatMessage("user", "Write a synthesizable Verilog module for my pet idea.")],
            LOW,
        )
        assert "could not match" in reply


class TestTestbenchGeneration:
    def test_tb_parses_and_runs(self):
        problem = get_problem("sq_counter_ud")
        llm = SimLLM("claude-3.5-sonnet")
        reply = llm.complete(tb_prompt(problem), LOW)
        tb = parse_testbench(extract_tb_block(reply))
        assert tb.kind == "clocked"
        report = run_testbench(problem.golden, tb, problem.top)
        assert report.error is None

    def test_tb_registered_with_genome(self):
        problem = get_problem("sq_counter_ud")
        llm = SimLLM("claude-3.5-sonnet")
        reply = llm.complete(tb_prompt(problem), LOW)
        genome = llm.registry.lookup_tb(extract_tb_block(reply))
        assert genome is not None and genome.problem_id == problem.id


class TestJudgeVerdicts:
    def test_clean_tb_usually_upheld(self):
        problem = get_problem("cb_mux2")  # easy: corruption unlikely
        llm = SimLLM("claude-3.5-sonnet")
        reply = llm.complete(tb_prompt(problem), LOW)
        tb_text = extract_tb_block(reply)
        genome = llm.registry.lookup_tb(tb_text)
        verdict = llm.complete(
            [
                ChatMessage(
                    "user",
                    "Review the testbench against the specification.\n\n"
                    f"## Specification\n{problem.spec}\n\n"
                    f"```testbench\n{tb_text}```",
                )
            ],
            LOW,
        )
        if genome.is_clean:
            assert "VERDICT:" in verdict


class TestSharedRegistry:
    def test_registry_shared_between_clients(self):
        registry = GenomeRegistry()
        problem = get_problem("cb_mux4")
        a = SimLLM("claude-3.5-sonnet", registry=registry)
        b = SimLLM("claude-3.5-sonnet", registry=registry)
        code = extract_code_block(a.complete(gen_prompt(problem), LOW))
        assert b.registry.lookup_code(code) is not None

    def test_create_llm_falls_back_to_simllm(self):
        llm = create_llm("gpt-4o")
        assert isinstance(llm, SimLLM)

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            create_llm("martian-13b")


class TestProfiles:
    def test_lambda_monotone_in_difficulty(self):
        profile = get_profile("claude-3.5-sonnet")
        assert profile.lam(0.9) > profile.lam(0.1)

    def test_temperature_raises_lambda(self):
        profile = get_profile("claude-3.5-sonnet")
        assert profile.lam(0.5, 0.85) > profile.lam(0.5, 0.0)

    def test_dispersion_zero_at_t0(self):
        assert get_profile("claude-3.5-sonnet").dispersion(0.0) == 0.0

    def test_polluted_profile(self):
        base = get_profile("claude-3.5-sonnet")
        bad = base.polluted()
        assert bad.pollution_lambda > 1.0
        assert bad.pollution_fix < 1.0
        assert bad.lam(0.5) > base.lam(0.5)

    def test_misconception_probability_shape(self):
        profile = get_profile("claude-3.5-sonnet")
        assert profile.misconception_p(0.1) == 0.0
        assert profile.misconception_p(0.9) > profile.misconception_p(0.5)

    def test_capability_ordering(self):
        assert (
            get_profile("claude-3.5-sonnet").capability
            > get_profile("gpt-4o").capability
            > get_profile("itertl-ft").capability
        )
