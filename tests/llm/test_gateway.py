"""Gateway failure modes: retry exhaustion, mid-chain fallback,
rate-limit queueing, cassette replay misses -- plus the determinism
anchors (gateway-over-sim == bare SimLLM, record/replay round trips,
per-role routing, pickling)."""

import pickle

import pytest

from repro.core.events import GatewayCall, ListSink, ambient_sink
from repro.llm.gateway import (
    GATEWAY_STATS,
    CassetteMiss,
    Gateway,
    GatewayExhausted,
    GatewaySettings,
    TokenBucket,
    parse_stage_models,
)
from repro.llm.gateway.backends import (
    BackendError,
    DownBackend,
    FlakyBackend,
    build_backend,
)
from repro.llm.interface import (
    HIGH_TEMPERATURE,
    LOW_TEMPERATURE,
    ChatMessage,
)
from repro.llm.simllm import SimLLM

MESSAGES = (
    ChatMessage("system", "You are an RTL engineer."),
    ChatMessage("user", "Write a 2:1 mux."),
)


@pytest.fixture(autouse=True)
def clean_stats():
    GATEWAY_STATS.reset()
    yield
    GATEWAY_STATS.reset()


def make_gateway(sleep=None, **overrides):
    settings = GatewaySettings(enabled=True, **overrides)
    kwargs = {"sleep": sleep} if sleep is not None else {}
    return Gateway(
        model="claude-3.5-sonnet", settings=settings, **kwargs
    )


class TestSimEquivalence:
    def test_gateway_over_sim_is_bit_identical(self):
        bare = SimLLM()
        gateway = make_gateway()
        assert gateway.complete(MESSAGES, LOW_TEMPERATURE) == bare.complete(
            MESSAGES, LOW_TEMPERATURE
        )
        assert gateway.sample(MESSAGES, HIGH_TEMPERATURE) == bare.sample(
            MESSAGES, HIGH_TEMPERATURE
        )
        assert gateway.model_name == bare.model_name

    def test_calls_emit_accounting_events(self):
        gateway = make_gateway()
        sink = ListSink()
        with ambient_sink(sink):
            gateway.sample(MESSAGES, HIGH_TEMPERATURE)
        calls = [e for e in sink.events if isinstance(e, GatewayCall)]
        assert len(calls) == 1
        assert calls[0].backend == "sim"
        assert calls[0].n == HIGH_TEMPERATURE.n
        assert calls[0].completion_tokens > 0


class TestRetryAndFallback:
    def test_all_backends_down_exhausts_with_retries(self):
        sleeps = []
        gateway = make_gateway(
            sleep=sleeps.append, backends=("down",), retries=3
        )
        with pytest.raises(GatewayExhausted):
            gateway.complete(MESSAGES, LOW_TEMPERATURE)
        down = gateway._backends[0]
        assert isinstance(down, DownBackend)
        assert down.calls == 3  # every retry reached the backend
        # Exponential backoff before attempts 2 and 3.
        assert sleeps == [0.05, 0.1]
        stats = GATEWAY_STATS.snapshot()
        assert stats["retries"] == 2
        assert stats["failures"] == 1

    def test_mid_chain_fallback_preserves_sim_output(self):
        """A chain that falls over to sim produces the exact completions
        a bare SimLLM would -- the flaky backend fails before touching
        the wrapped client, so no RNG state is consumed."""
        bare = SimLLM()
        gateway = make_gateway(
            sleep=lambda _s: None,
            backends=("flaky@5", "sim"),
            retries=2,
        )
        assert gateway.sample(MESSAGES, HIGH_TEMPERATURE) == bare.sample(
            MESSAGES, HIGH_TEMPERATURE
        )
        stats = GATEWAY_STATS.snapshot()
        assert stats["fallbacks"] == 1
        assert stats["retries"] == 1

    def test_flaky_backend_recovers_within_retries(self):
        bare = SimLLM()
        gateway = make_gateway(
            sleep=lambda _s: None, backends=("flaky@2",), retries=3
        )
        assert gateway.complete(MESSAGES, LOW_TEMPERATURE) == bare.complete(
            MESSAGES, LOW_TEMPERATURE
        )
        flaky = gateway._backends[0]
        assert isinstance(flaky, FlakyBackend)
        assert flaky.failures_dealt == 2
        assert GATEWAY_STATS.snapshot()["fallbacks"] == 0

    def test_permanent_error_aborts_the_chain(self):
        """A BackendError (bad auth, bad request) must not be retried
        or failed over -- the sim backend after it stays untouched."""

        class Rejecting(DownBackend):
            def sample(self, model, messages, params):
                self.calls += 1
                raise BackendError("401 unauthorized")

            complete = sample

        gateway = make_gateway(backends=("sim", "sim"), retries=3)
        rejecting = Rejecting()
        gateway._backends[0] = rejecting
        with pytest.raises(BackendError):
            gateway.complete(MESSAGES, LOW_TEMPERATURE)
        assert rejecting.calls == 1


class TestRateLimit:
    def test_token_bucket_queues_past_the_burst(self):
        clock = [0.0]
        waits = []

        def sleep(seconds):
            waits.append(seconds)
            clock[0] += seconds

        bucket = TokenBucket(rate=2.0, burst=2, clock=lambda: clock[0], sleep=sleep)
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        waited = bucket.acquire()  # burst spent: must wait 1/rate
        assert waited == pytest.approx(0.5)
        assert waits == [pytest.approx(0.5)]

    def test_gateway_counts_rate_limit_waits(self):
        clock = [0.0]
        bucket = TokenBucket(
            rate=1.0,
            burst=1,
            clock=lambda: clock[0],
            sleep=lambda s: clock.__setitem__(0, clock[0] + s),
        )
        settings = GatewaySettings(enabled=True)
        gateway = Gateway(
            model="claude-3.5-sonnet", settings=settings, limiter=bucket
        )
        gateway.complete(MESSAGES, LOW_TEMPERATURE)
        gateway.complete(MESSAGES, LOW_TEMPERATURE)
        assert GATEWAY_STATS.snapshot()["rate_limit_waits"] == 1

    def test_zero_rate_disables_the_limiter(self):
        bucket = TokenBucket(rate=0.0)
        assert all(bucket.acquire() == 0.0 for _ in range(100))


class TestCassette:
    def test_record_then_replay_round_trips(self, tmp_path):
        recorder = make_gateway(mode="record", cassette_dir=str(tmp_path))
        recorded = recorder.sample(MESSAGES, HIGH_TEMPERATURE)
        replayer = make_gateway(
            mode="replay", cassette_dir=str(tmp_path), backends=("down",)
        )
        assert replayer.sample(MESSAGES, HIGH_TEMPERATURE) == recorded
        # Zero network: the down backend was never consulted.
        assert replayer._backends[0].calls == 0

    def test_replay_emits_the_recorded_accounting_event(self, tmp_path):
        recorder = make_gateway(mode="record", cassette_dir=str(tmp_path))
        record_sink = ListSink()
        with ambient_sink(record_sink):
            recorder.sample(MESSAGES, HIGH_TEMPERATURE)
        replayer = make_gateway(
            mode="replay", cassette_dir=str(tmp_path), backends=("down",)
        )
        replay_sink = ListSink()
        with ambient_sink(replay_sink):
            replayer.sample(MESSAGES, HIGH_TEMPERATURE)
        assert [e.to_json() for e in record_sink.events] == [
            e.to_json() for e in replay_sink.events
        ]

    def test_replay_miss_raises(self, tmp_path):
        replayer = make_gateway(
            mode="replay", cassette_dir=str(tmp_path), backends=("down",)
        )
        with pytest.raises(CassetteMiss):
            replayer.complete(MESSAGES, LOW_TEMPERATURE)
        assert GATEWAY_STATS.snapshot()["cassette_misses"] == 1

    def test_repeated_identical_requests_get_their_own_slots(self, tmp_path):
        """The Nth identical request records (and replays) the Nth
        answer -- high-temperature resampling must not collapse."""
        recorder = make_gateway(mode="record", cassette_dir=str(tmp_path))
        first = recorder.sample(MESSAGES, HIGH_TEMPERATURE)
        second = recorder.sample(MESSAGES, HIGH_TEMPERATURE)
        # Two distinct cassette entries, not one overwritten slot.
        assert len(list(tmp_path.glob("*.pkl"))) == 2
        replayer = make_gateway(
            mode="replay", cassette_dir=str(tmp_path), backends=("down",)
        )
        # If ordinals collapsed, the second replay would miss.
        assert replayer.sample(MESSAGES, HIGH_TEMPERATURE) == first
        assert replayer.sample(MESSAGES, HIGH_TEMPERATURE) == second


class TestRouting:
    def test_no_routing_shares_one_instance(self):
        gateway = make_gateway()
        assert gateway.for_role("rtl") is gateway
        assert gateway.for_role("tb") is gateway

    def test_stage_models_route_roles_to_models(self):
        gateway = make_gateway(
            stage_models=parse_stage_models("rtl=gpt-4o")
        )
        routed = gateway.for_role("rtl")
        assert routed is not gateway
        assert routed.model == "gpt-4o"
        assert routed.role == "rtl"
        # Unrouted roles keep the default model but still get a sibling
        # carrying their role tag for cassette identity.
        assert gateway.for_role("tb").model == "claude-3.5-sonnet"

    def test_siblings_share_registry_and_limiter(self):
        gateway = make_gateway(
            stage_models=parse_stage_models("rtl=gpt-4o")
        )
        routed = gateway.for_role("rtl")
        assert routed.registry is gateway.registry
        assert routed._limiter is gateway._limiter

    def test_unknown_role_in_stage_models_rejected(self):
        with pytest.raises(ValueError):
            parse_stage_models("compiler=gpt-4o")


class TestPickling:
    def test_gateway_round_trips_through_pickle(self):
        gateway = make_gateway()
        gateway.complete(MESSAGES, LOW_TEMPERATURE)
        clone = pickle.loads(pickle.dumps(gateway))
        assert clone.settings == gateway.settings
        assert clone._lock is not None and clone._limiter is not None
        # The clone continues the identical sim stream: a bare SimLLM
        # with one call consumed produces the clone's next completion.
        bare = SimLLM()
        bare.complete(MESSAGES, LOW_TEMPERATURE)
        assert clone.complete(MESSAGES, LOW_TEMPERATURE) == bare.complete(
            MESSAGES, LOW_TEMPERATURE
        )


class TestBackendParsing:
    def test_build_backend_specs(self):
        sim = SimLLM()
        assert build_backend("sim", sim).name == "sim"
        assert build_backend("down", None).name == "down"
        flaky = build_backend("flaky@7", sim)
        assert isinstance(flaky, FlakyBackend)
        assert flaky.fail_first == 7
        openai = build_backend("openai:http://localhost:9", None)
        assert openai.name == "openai"
        anthropic = build_backend("anthropic", None)
        assert anthropic.name == "anthropic"

    def test_unknown_backend_spec_rejected(self):
        with pytest.raises(ValueError):
            build_backend("telepathy", None)

    def test_sim_spec_requires_a_sim_client(self):
        with pytest.raises(ValueError):
            build_backend("sim", None)
