"""Fault-injection engine: operators, paths, application invariants."""

import numpy as np
import pytest

from repro.hdl.lint import lint
from repro.hdl.parser import parse_module
from repro.hdl.unparse import unparse_module
from repro.llm.mutation import (
    apply_faults,
    collect_sites,
    corrupt_syntax,
    declared_widths,
    node_at,
    replace_at,
    sample_faults,
)

SRC = """
module demo (input clk, input rst, input [3:0] a, input [3:0] b,
             output reg [3:0] y, output wire p);
    assign p = ^a;
    always @(posedge clk) begin
        if (rst)
            y <= 4'd0;
        else begin
            case (a[1:0])
                2'd0: y <= a + b;
                2'd1: y <= a & b;
                default: y <= a ^ b;
            endcase
        end
    end
endmodule
"""


@pytest.fixture(scope="module")
def demo():
    return parse_module(SRC, "demo")


@pytest.fixture(scope="module")
def sites(demo):
    return collect_sites(demo)


class TestPathInfrastructure:
    def test_node_at_and_replace_at_invert(self, demo, sites):
        for site in sites[:20]:
            assert node_at(demo, site.path) == site.node
            replaced = replace_at(demo, site.path, site.node)
            assert unparse_module(replaced) == unparse_module(demo)

    def test_replace_at_none_removes_tuple_entry(self, demo, sites):
        # Deletion is only defined for tuple members (e.g. Block stmts).
        tuple_sites = [s for s in sites if s.path[-1][1] is not None]
        assert tuple_sites, "expected at least one tuple-member site"
        victim = tuple_sites[0]
        removed = replace_at(demo, victim.path, None)
        assert unparse_module(removed) != unparse_module(demo)


class TestSiteCollection:
    def test_sites_found(self, sites):
        assert len(sites) > 10

    def test_lvalues_not_mutable(self, sites):
        # No site should be the bare target of an assignment.
        for site in sites:
            assert site.path[-1] != ("target", None)

    def test_affected_signals_tracked(self, sites):
        named = {name for s in sites for name in s.affected}
        assert "y" in named and "p" in named

    def test_clocked_flag(self, sites):
        clocked = [s for s in sites if s.in_clocked]
        assert clocked and all("y" in s.affected for s in clocked)

    def test_declared_widths(self, demo):
        widths = declared_widths(demo)
        assert widths["a"] == 4 and widths["p"] == 1 and widths["clk"] == 1


class TestSampling:
    def test_deterministic_given_seed(self, demo, sites):
        a = sample_faults(demo, 3, np.random.default_rng(7), sites)
        b = sample_faults(demo, 3, np.random.default_rng(7), sites)
        assert [f.key() for f in a] == [f.key() for f in b]

    def test_prefix_disjoint_paths(self, demo, sites):
        rng = np.random.default_rng(1)
        for _ in range(20):
            faults = sample_faults(demo, 4, rng, sites)
            paths = [f.path for f in faults]
            for i, p in enumerate(paths):
                for q in paths[i + 1 :]:
                    shorter, longer = sorted((p, q), key=len)
                    assert longer[: len(shorter)] != shorter

    def test_zero_count(self, demo, sites):
        assert sample_faults(demo, 0, np.random.default_rng(0), sites) == ()

    def test_descriptions_are_informative(self, demo, sites):
        rng = np.random.default_rng(3)
        faults = sample_faults(demo, 4, rng, sites)
        assert all(len(f.description) > 8 for f in faults)


class TestApplication:
    def test_mutants_compile(self, demo, sites):
        rng = np.random.default_rng(11)
        for _ in range(30):
            faults = sample_faults(demo, int(rng.integers(1, 4)), rng, sites)
            source = unparse_module(apply_faults(demo, faults))
            assert lint(source, "demo").ok, source

    def test_mutants_differ_from_golden(self, demo, sites):
        rng = np.random.default_rng(5)
        golden = unparse_module(demo)
        changed = 0
        for _ in range(20):
            faults = sample_faults(demo, 1, rng, sites)
            if faults:
                mutated = unparse_module(apply_faults(demo, faults))
                changed += mutated != golden
        assert changed >= 18  # operators almost always change the text

    def test_subset_application_removes_bug(self, demo, sites):
        rng = np.random.default_rng(9)
        faults = sample_faults(demo, 2, rng, sites)
        assert len(faults) == 2
        both = unparse_module(apply_faults(demo, faults))
        one = unparse_module(apply_faults(demo, faults[:1]))
        none = unparse_module(apply_faults(demo, ()))
        assert none == unparse_module(demo)
        assert both != one != none

    def test_empty_fault_set_is_identity(self, demo):
        assert unparse_module(apply_faults(demo, ())) == unparse_module(demo)


class TestSyntaxCorruption:
    def test_corruption_breaks_compilation(self):
        rng = np.random.default_rng(2)
        broken = 0
        for _ in range(20):
            bad, description = corrupt_syntax(SRC, rng)
            assert description
            if not lint(bad, "demo").ok:
                broken += 1
        assert broken >= 18

    def test_corruption_is_textual(self):
        rng = np.random.default_rng(4)
        bad, _ = corrupt_syntax(SRC, rng)
        assert bad != SRC
