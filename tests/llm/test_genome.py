"""Genome registry: text-to-fault-content bookkeeping."""

from repro.llm.genome import (
    CandidateGenome,
    GenomeRegistry,
    TestbenchGenome,
)


class TestCandidateGenome:
    def test_clean(self):
        genome = CandidateGenome("p1")
        assert genome.is_clean

    def test_syntax_error_not_clean(self):
        genome = CandidateGenome("p1", (), "missing semicolon")
        assert not genome.is_clean
        assert genome.without_syntax_error().is_clean

    def test_with_faults_preserves_syntax_state(self):
        genome = CandidateGenome("p1", (), "broken")
        updated = genome.with_faults(())
        assert updated.syntax_error == "broken"


class TestTestbenchGenome:
    def test_clean(self):
        assert TestbenchGenome("p1").is_clean
        assert not TestbenchGenome("p1", ((0, "q"),)).is_clean


class TestRegistry:
    def test_code_lookup_ignores_whitespace(self):
        registry = GenomeRegistry()
        genome = CandidateGenome("p1")
        registry.remember_code("module m;\n  endmodule\n", genome)
        assert registry.lookup_code("module m;   endmodule") is genome

    def test_unknown_code(self):
        assert GenomeRegistry().lookup_code("module x; endmodule") is None

    def test_tb_lookup(self):
        registry = GenomeRegistry()
        genome = TestbenchGenome("p1", ((2, "y"),))
        registry.remember_tb("TESTBENCH comb\nSTEP a=1\n", genome)
        assert registry.lookup_tb("TESTBENCH comb\n STEP a=1") is genome

    def test_later_registration_wins(self):
        registry = GenomeRegistry()
        first = CandidateGenome("p1")
        second = CandidateGenome("p2")
        registry.remember_code("same text", first)
        registry.remember_code("same  text", second)
        assert registry.lookup_code("same text") is second
