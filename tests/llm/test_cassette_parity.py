"""Cassette determinism matrix: record once with the simllm-backed
gateway, then replay -- with the network path stubbed to a backend that
always raises -- across {serial, rollout-batched, service} execution.
Every replay stream must be bit-identical to the recording run's
(wall-clock ``seconds`` zeroed, per the parity convention)."""

import pytest

from repro.baselines.registry import SYSTEMS
from repro.core.events import ListSink
from repro.core.task import DesignTask
from repro.evalsets import get_problem, golden_testbench
from repro.llm.gateway import GATEWAY_STATS, GatewaySettings
from repro.runtime.executor import ThreadExecutor
from repro.runtime.rollout import RolloutRequest, RolloutScheduler
from repro.service import ServiceClient, SolveServer

SYSTEM_KEYS = ["mage", "vanilla-claude"]
PROBLEM_IDS = ["cb_kmap_mux", "fs_vending"]
SEED = 2


def canonical(events):
    """Event stream as JSON payloads with wall-clock fields zeroed."""
    payloads = []
    for event in events:
        payload = event.to_json()
        if "seconds" in payload:
            payload["seconds"] = 0.0
        payloads.append(payload)
    return payloads


def serial_solve(key, problem_id):
    sink = ListSink()
    system = SYSTEMS[key].factory()
    source = system.solve(
        DesignTask.from_problem(get_problem(problem_id)),
        seed=SEED,
        sink=sink,
    )
    return source, canonical(sink.events)


@pytest.fixture(scope="module")
def cassette(tmp_path_factory):
    """Record the whole matrix once; yield (dir, reference streams)."""
    directory = str(tmp_path_factory.mktemp("cassettes"))
    import os

    saved = {
        name: os.environ.get(name)
        for name in (
            "REPRO_GATEWAY",
            "REPRO_GATEWAY_MODE",
            "REPRO_CASSETTE_DIR",
            "REPRO_GATEWAY_BACKENDS",
        )
    }
    os.environ["REPRO_GATEWAY"] = "1"
    os.environ["REPRO_GATEWAY_MODE"] = "record"
    os.environ["REPRO_CASSETTE_DIR"] = directory
    os.environ.pop("REPRO_GATEWAY_BACKENDS", None)
    try:
        reference = {
            (key, problem_id): serial_solve(key, problem_id)
            for key in SYSTEM_KEYS
            for problem_id in PROBLEM_IDS
        }
        # Flip the environment to replay-with-network-down for the
        # actual tests: any call leaving the cassette store would land
        # on the down backend and error loudly.
        os.environ["REPRO_GATEWAY_MODE"] = "replay"
        os.environ["REPRO_GATEWAY_BACKENDS"] = "down"
        yield directory, reference
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


class TestSerialReplay:
    @pytest.mark.parametrize("key", SYSTEM_KEYS)
    def test_replay_streams_are_bit_identical(self, key, cassette):
        _, reference = cassette
        for problem_id in PROBLEM_IDS:
            source, events = serial_solve(key, problem_id)
            ref_source, ref_events = reference[(key, problem_id)]
            assert source == ref_source
            assert events == ref_events

    def test_replay_is_zero_network(self, cassette):
        GATEWAY_STATS.reset()
        serial_solve("mage", PROBLEM_IDS[0])
        stats = GATEWAY_STATS.snapshot()
        assert stats["replayed"] == stats["calls"] > 0
        assert stats["failures"] == 0
        # Replay serves from the store; no live spend is counted.
        assert stats["cost"] == 0.0


class TestRolloutReplay:
    def test_batched_replay_matches_the_recording(self, cassette):
        directory, reference = cassette
        settings = GatewaySettings.from_env()
        assert settings.mode == "replay"
        sinks = {}
        requests = []
        for index, problem_id in enumerate(PROBLEM_IDS):
            problem = get_problem(problem_id)
            sinks[problem_id] = ListSink()
            requests.append(
                RolloutRequest(
                    index=index,
                    factory=SYSTEMS["mage"].factory,
                    problem=problem,
                    golden_tb=golden_testbench(problem),
                    seed=SEED,
                    sink=sinks[problem_id],
                )
            )
        with ThreadExecutor(2) as executor:
            scheduler = RolloutScheduler(
                executor=executor, batch=4, gateway=settings
            )
            results = scheduler.run(requests)
        for result, problem_id in zip(results, PROBLEM_IDS):
            assert result.error is None
            ref_source, ref_events = reference[("mage", problem_id)]
            assert result.source == ref_source
            assert canonical(sinks[problem_id].events) == ref_events


class TestServiceReplay:
    def test_service_replay_matches_and_reports_stats(self, cassette):
        _, reference = cassette
        GATEWAY_STATS.reset()
        with SolveServer(workers=1, solve_cache=False) as server:
            assert server.gateway is not None
            assert server.gateway.mode == "replay"
            with ServiceClient(server.address) as client:
                for key in SYSTEM_KEYS:
                    for problem_id in PROBLEM_IDS:
                        sink = ListSink()
                        outcome = client.solve(
                            key, problem_id, seed=SEED, events=sink
                        )
                        ref_source, ref_events = reference[(key, problem_id)]
                        assert outcome.source == ref_source
                        assert canonical(sink.events) == ref_events
                stats = client.stats()
        # The StatsReply is a real metrics report now: gateway
        # counters, per-stage wall-clock, and the cassette layer.
        gateway = stats["gateway"]
        assert gateway["replayed"] == gateway["calls"] > 0
        assert stats["gateway_mode"] == "replay"
        assert any(name.startswith("mage/") for name in stats["stages"])
        cassette_stats = stats["caches"]["cassette"]
        assert cassette_stats is not None
        assert cassette_stats["entries"] > 0

    def test_cassette_is_a_peer_shareable_layer(self, cassette):
        """The ``llm`` wire layer serves cassette entries like any
        other tier: peers can read recorded completions over
        ``CacheGet`` frames."""
        from repro.llm.gateway.cassette import CassetteRecord
        from repro.runtime.cache import decode_value

        with SolveServer(workers=1, solve_cache=False) as server:
            record = CassetteRecord(completions=("x",), backend="sim")
            server.cassette().put_local("gateway-peer-test", record)
            with ServiceClient(server.address) as client:
                # An unknown key is a typed miss, not an error.
                assert client.cache_get("llm", "no-such-key") is None
                blob = client.cache_get("llm", "gateway-peer-test")
                assert blob is not None
                assert decode_value(blob, CassetteRecord) == record
