"""End-to-end engine tests: the five-step workflow."""

import pytest

from repro.core import MAGE, DesignTask, MAGEConfig
from repro.core.config import MAGEConfig as Config
from repro.evalsets import get_problem, golden_testbench
from repro.hdl.lint import lint
from repro.llm.interface import SamplingParams
from repro.tb.runner import run_testbench


class TestConfig:
    def test_defaults_follow_paper(self):
        config = MAGEConfig()
        assert config.candidates == 4
        assert config.top_k == 2
        assert config.debug_iterations == 5
        assert config.checkpoint_window == 8
        assert config.generation.temperature == 0.85
        assert config.initial_generation.temperature == 0.0

    def test_low_temperature_preset(self):
        config = MAGEConfig.low_temperature()
        assert config.generation.temperature == 0.0
        assert config.generation.top_p == 0.01

    def test_with_seed_binds_everywhere(self):
        config = MAGEConfig.high_temperature().with_seed(7)
        assert config.generation.seed == 7
        assert config.debug_params.seed == 7

    def test_task_validation(self):
        with pytest.raises(ValueError):
            DesignTask(spec="s", top="t", kind="clocked", clock=None)
        with pytest.raises(ValueError):
            DesignTask(spec="s", top="t", kind="quantum")


class TestSolve:
    def test_easy_problem_passes_directly(self):
        problem = get_problem("cb_mux2")
        engine = MAGE(MAGEConfig.high_temperature())
        result = engine.solve(DesignTask.from_problem(problem), seed=0)
        assert result.internal_pass
        assert result.transcript.stage_reached == "done"
        golden = run_testbench(result.source, golden_testbench(problem), problem.top)
        assert golden.passed

    def test_result_code_always_compiles(self):
        for pid in ["cb_kmap_mux", "fs_seq_det_110", "me_ram_sync"]:
            problem = get_problem(pid)
            engine = MAGE(MAGEConfig.high_temperature())
            result = engine.solve(DesignTask.from_problem(problem), seed=1)
            assert lint(result.source, problem.top).ok, pid

    def test_transcript_records_stages(self):
        problem = get_problem("fs_vending")
        engine = MAGE(MAGEConfig.high_temperature())
        result = engine.solve(DesignTask.from_problem(problem), seed=2)
        stages = {e.stage for e in result.transcript.events}
        assert "step1" in stages and "step2" in stages
        assert result.transcript.initial_score is not None
        assert result.transcript.llm_calls > 0

    def test_deterministic_at_seed(self):
        problem = get_problem("fs_seq_det_1011")
        r1 = MAGE(MAGEConfig.high_temperature()).solve(
            DesignTask.from_problem(problem), seed=5
        )
        r2 = MAGE(MAGEConfig.high_temperature()).solve(
            DesignTask.from_problem(problem), seed=5
        )
        assert r1.source == r2.source
        assert r1.internal_score == r2.internal_score

    def test_different_seeds_can_differ(self):
        problem = get_problem("me_stack4")
        sources = {
            MAGE(MAGEConfig.high_temperature())
            .solve(DesignTask.from_problem(problem), seed=s)
            .internal_score
            for s in range(3)
        }
        assert len(sources) >= 1  # smoke: no crashes across seeds

    def test_candidate_scores_collected_when_sampling(self):
        problem = get_problem("fs_traffic")
        engine = MAGE(MAGEConfig.high_temperature())
        result = engine.solve(DesignTask.from_problem(problem), seed=4)
        transcript = result.transcript
        if transcript.initial_score < 1.0:
            assert len(transcript.candidate_scores) >= transcript.initial_score >= 0

    def test_render_transcript(self):
        problem = get_problem("cb_mux2")
        engine = MAGE(MAGEConfig.high_temperature())
        result = engine.solve(DesignTask.from_problem(problem), seed=0)
        text = result.transcript.render()
        assert "MAGE run" in text and "[step1]" in text


class TestAblationModes:
    def test_single_agent_shares_history(self):
        config = Config.low_temperature()
        config = Config(
            model=config.model,
            single_agent=True,
            use_checkpoints=False,
            generation=config.generation,
        )
        engine = MAGE(config)
        assert engine.rtl_agent.conversation is engine.tb_agent.conversation
        assert engine.judge.conversation is engine.debug_agent.conversation

    def test_multi_agent_private_histories(self):
        engine = MAGE(MAGEConfig.high_temperature())
        assert engine.rtl_agent.conversation is not engine.tb_agent.conversation

    def test_single_agent_uses_polluted_profile(self):
        config = Config(single_agent=True)
        engine = MAGE(config)
        assert "merged-history" in engine.llm.model_name

    def test_no_sampling_config_skips_step4_pool(self):
        from dataclasses import replace

        problem = get_problem("fs_vending")
        config = replace(MAGEConfig.high_temperature(), use_sampling=False)
        result = MAGE(config).solve(DesignTask.from_problem(problem), seed=3)
        # Pool contains at most the initial candidate.
        assert len(result.transcript.candidate_scores) <= 1

    def test_custom_llm_injection(self):
        from repro.llm import SimLLM

        llm = SimLLM("gpt-4o")
        engine = MAGE(MAGEConfig.high_temperature(), llm=llm)
        assert engine.llm.model_name == "gpt-4o"


class TestGoldenHintPath:
    def test_solve_with_golden_hint(self):
        from repro.tb.stimulus import render_testbench

        problem = get_problem("sq_tff")
        hint = render_testbench(golden_testbench(problem))
        engine = MAGE(MAGEConfig.high_temperature())
        result = engine.solve(
            DesignTask.from_problem(problem), golden_tb_hint=hint, seed=0
        )
        assert result.source
