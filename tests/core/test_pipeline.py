"""Staged pipeline runner: ordering, short-circuit, checkpoint/resume."""

import pickle

import pytest

from repro.core.config import MAGEConfig
from repro.core.engine import MAGE, mage_pipeline, mage_result, run_mage_state
from repro.core.events import ListSink, StageFinished, StageStarted
from repro.core.pipeline import (
    DONE,
    FileCheckpointer,
    MemoryCheckpointer,
    Pipeline,
    ProgramSpec,
    RunState,
    Stage,
    resume_program,
    restore_state,
    stage_before,
    start_program,
)
from repro.core.task import DesignTask
from repro.evalsets import get_problem


def _record(name):
    def fn(state, emit):
        state.data.setdefault("trace", []).append(name)

    return fn


def _stop(state, emit):
    state.data.setdefault("trace", []).append("stop")
    return DONE


class TestRunner:
    def test_stages_run_in_order(self):
        pipe = Pipeline("p", [Stage("a", _record("a")), Stage("b", _record("b"))])
        state = pipe.run(RunState())
        assert state.data["trace"] == ["a", "b"]
        assert state.finished
        assert state.next_stage == 2

    def test_done_short_circuits(self):
        pipe = Pipeline(
            "p",
            [Stage("a", _record("a")), Stage("s", _stop), Stage("c", _record("c"))],
        )
        state = pipe.run(RunState())
        assert state.data["trace"] == ["a", "stop"]
        assert state.finished

    def test_stop_after_pauses_resumably(self):
        pipe = Pipeline(
            "p", [Stage("a", _record("a")), Stage("b", _record("b"))]
        )
        state = pipe.run(RunState(), stop_after="a")
        assert state.data["trace"] == ["a"]
        assert not state.finished
        pipe.run(state)
        assert state.data["trace"] == ["a", "b"]
        assert state.finished

    def test_unknown_stop_after_rejected(self):
        pipe = Pipeline("p", [Stage("a", _record("a"))])
        with pytest.raises(ValueError):
            pipe.run(RunState(), stop_after="zz")

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError):
            Pipeline("p", [Stage("a", _record("a")), Stage("a", _record("a"))])

    def test_stage_boundary_events(self):
        sink = ListSink()
        pipe = Pipeline("p", [Stage("a", _record("a")), Stage("b", _record("b"))])
        pipe.run(RunState(), sink=sink)
        kinds = [type(e).__name__ for e in sink.events]
        assert kinds == [
            "StageStarted",
            "StageFinished",
            "StageStarted",
            "StageFinished",
        ]
        assert [e.stage for e in sink.events if isinstance(e, StageStarted)] == [
            "a",
            "b",
        ]
        assert all(
            e.seconds >= 0 for e in sink.events if isinstance(e, StageFinished)
        )

    def test_checkpoint_called_per_stage(self):
        ck = MemoryCheckpointer()
        pipe = Pipeline("p", [Stage("a", _record("a")), Stage("b", _record("b"))])
        pipe.run(RunState(), checkpoint=ck)
        assert ck.saves == 2
        assert restore_state(ck.blob).finished

    def test_snapshot_roundtrip(self):
        state = RunState(seed=7, data={"x": [1, 2]})
        clone = restore_state(state.snapshot())
        assert clone.seed == 7 and clone.data == {"x": [1, 2]}
        assert clone is not state

    def test_restore_rejects_non_state(self):
        with pytest.raises(TypeError):
            restore_state(pickle.dumps("not a state"))

    def test_stop_after_final_stage_marks_finished(self):
        """Regression: pausing "after" the last stage is not a pause --
        there is nothing left to resume, so the state must come back
        finished, not claiming to be resumable."""
        pipe = Pipeline(
            "p", [Stage("a", _record("a")), Stage("b", _record("b"))]
        )
        state = pipe.run(RunState(), stop_after="b")
        assert state.finished
        assert state.next_stage == 2
        # Resuming a finished state is a no-op, not a re-run.
        pipe.run(state)
        assert state.data["trace"] == ["a", "b"]

    def test_stop_after_final_stage_after_resume_marks_finished(self):
        pipe = Pipeline(
            "p", [Stage("a", _record("a")), Stage("b", _record("b"))]
        )
        state = pipe.run(RunState(), stop_after="a")
        assert not state.finished
        pipe.run(state, stop_after="b")
        assert state.finished

    def test_empty_pipeline_finishes_immediately(self):
        """A stage list with nothing to run can never leave a state
        pretending to be resumable."""
        state = Pipeline("p", []).run(RunState())
        assert state.finished

    def test_state_cursor_past_end_marks_finished(self):
        pipe = Pipeline("p", [Stage("a", _record("a"))])
        stale = RunState(next_stage=1, finished=False)
        ck = MemoryCheckpointer()
        pipe.run(stale, checkpoint=ck)
        assert stale.finished
        assert restore_state(ck.blob).finished

    def test_file_checkpointer_roundtrip(self, tmp_path):
        ck = FileCheckpointer(str(tmp_path / "ckpt" / "run.ckpt"))
        pipe = Pipeline("p", [Stage("a", _record("a")), Stage("b", _record("b"))])
        pipe.run(RunState(), stop_after="a", checkpoint=ck)
        restored = ck.restore()
        assert restored.data["trace"] == ["a"]
        pipe.run(restored)
        assert restored.data["trace"] == ["a", "b"]


def _program_pipeline():
    return Pipeline("p", [Stage("a", _record("a")), Stage("b", _record("b"))])


def _program_extract(state):
    return ",".join(state.data["trace"])


class TestRunProgram:
    def _spec(self):
        return ProgramSpec(
            pipeline_factory=_program_pipeline,
            system="prog",
            task_name="task",
            extractor=_program_extract,
        )

    def test_advance_emits_run_started_once(self):
        from repro.core.events import ListSink

        program = start_program(self._spec(), RunState(seed=3))
        sink = ListSink()
        program.advance(sink=sink, stop_after="a")
        program.advance(sink=sink)
        kinds = [e.kind for e in sink.events]
        assert kinds.count("run-started") == 1
        assert kinds[0] == "run-started"
        assert sink.events[0].seed == 3
        assert program.finished
        assert program.source() == "a,b"

    def test_source_requires_finished_state(self):
        program = start_program(self._spec(), RunState())
        program.advance(stop_after="a")
        with pytest.raises(ValueError):
            program.source()

    def test_spec_travels_with_the_pickled_state(self):
        program = start_program(self._spec(), RunState())
        program.advance(stop_after="a")
        resumed = resume_program(restore_state(program.state.snapshot()))
        resumed.advance()
        assert resumed.source() == "a,b"

    def test_resume_program_requires_a_spec(self):
        with pytest.raises(ValueError):
            resume_program(RunState())

    def test_stage_before(self):
        pipe = _program_pipeline()
        assert stage_before(pipe, "b") == "a"
        assert stage_before(pipe, "a") is None
        with pytest.raises(ValueError):
            stage_before(pipe, "zz")


class TestMagePipeline:
    def test_stage_names_follow_paper(self):
        assert mage_pipeline().stage_names() == [
            "step1",
            "step2",
            "step3",
            "step4",
            "step5",
        ]

    @pytest.mark.parametrize("stop", ["step1", "step2", "step3"])
    def test_resume_from_checkpoint_is_deterministic(self, stop):
        """Pause after any early stage, pickle, restore, resume: the
        final result must be bit-identical to an uninterrupted run."""
        problem = get_problem("fs_vending")  # enters Steps 4-5 at seed 2
        task = DesignTask.from_problem(problem)
        full = MAGE(MAGEConfig.high_temperature()).solve(task, seed=2)

        engine = MAGE(MAGEConfig.high_temperature())
        ck = MemoryCheckpointer()
        state = engine.start_state(task, seed=2)
        run_mage_state(state, stop_after=stop, checkpoint=ck)
        assert not ck.restore().finished

        resumed = ck.restore()  # fresh objects via pickle round-trip
        run_mage_state(resumed)
        result = mage_result(resumed)
        assert result.source == full.source
        assert result.internal_score == full.internal_score
        assert result.transcript.render() == full.transcript.render()
        assert result.transcript.llm_calls == full.transcript.llm_calls

    def test_resume_direct_pass_short_circuit(self):
        """A run that finishes in step3 resumes to the same early finish."""
        problem = get_problem("cb_mux2")
        task = DesignTask.from_problem(problem)
        full = MAGE(MAGEConfig.high_temperature()).solve(task, seed=0)

        engine = MAGE(MAGEConfig.high_temperature())
        ck = MemoryCheckpointer()
        state = engine.start_state(task, seed=0)
        run_mage_state(state, stop_after="step2", checkpoint=ck)
        resumed = ck.restore()
        run_mage_state(resumed)
        result = mage_result(resumed)
        assert result.source == full.source
        assert result.transcript.stage_reached == full.transcript.stage_reached

    def test_unfinished_state_has_no_result(self):
        engine = MAGE(MAGEConfig.high_temperature())
        task = DesignTask.from_problem(get_problem("fs_vending"))
        state = engine.start_state(task, seed=2)
        run_mage_state(state, stop_after="step1")
        with pytest.raises(ValueError):
            mage_result(state)

    def test_solve_records_events_on_result(self):
        engine = MAGE(MAGEConfig.high_temperature())
        task = DesignTask.from_problem(get_problem("cb_mux2"))
        result = engine.solve(task, seed=0)
        kinds = {e.kind for e in result.events}
        assert "run-started" in kinds
        assert "run-finished" in kinds
        assert "stage-finished" in kinds
