"""Typed events, sinks, and transcript/figure parity with the legacy
string-based records."""

import json
import pickle

import pytest

from repro.core.config import MAGEConfig
from repro.core.engine import MAGE
from repro.core.events import (
    EVENT_TYPES,
    Broadcast,
    CandidateScored,
    CellFinished,
    DebugRound,
    EarlyFinish,
    Event,
    ListSink,
    SamplingSummary,
    StageFinished,
    StreamSink,
    TestbenchReady,
    as_sink,
)
from repro.core.task import DesignTask
from repro.core.transcript import transcript_from_events
from repro.evaluation.figures import ScoreSeries
from repro.evalsets import get_problem


def _solve(pid, seed):
    task = DesignTask.from_problem(get_problem(pid))
    return MAGE(MAGEConfig.high_temperature()).solve(task, seed=seed)


class TestEvents:
    def test_events_are_picklable(self):
        events = [
            TestbenchReady(total_checks=4),
            CandidateScored(origin="initial", score=0.5, passed=False),
            DebugRound(round_index=1, scores=(0.5, 0.7)),
            CellFinished(
                problem_id="p", run_index=0, passed=True, score=1.0, seconds=0.1
            ),
        ]
        assert pickle.loads(pickle.dumps(events)) == events

    def test_render_lines_are_human(self):
        assert "testbench generated: 4" in TestbenchReady(total_checks=4).render()
        assert "skipping steps 4-5" in EarlyFinish(reason="initial-pass").render()
        assert "3 candidates" in SamplingSummary(
            pool_scores=(0.1, 0.9, 0.5), selected_scores=(0.9, 0.5)
        ).render()

    def test_sinks(self):
        lines = []
        collected = ListSink()
        stream = StreamSink(write=lines.append, kinds={"testbench-ready"})
        both = Broadcast(collected, stream)
        both.emit(TestbenchReady(total_checks=2))
        both.emit(EarlyFinish(reason="initial-pass"))  # filtered from stream
        assert len(collected.events) == 2
        assert len(lines) == 1 and "testbench" in lines[0]

    def test_as_sink_wraps_callables(self):
        seen = []
        as_sink(seen.append).emit(TestbenchReady(total_checks=1))
        assert len(seen) == 1
        assert as_sink(None).emit(TestbenchReady(total_checks=1)) is None


def _all_event_classes(root=Event):
    found = set()
    for cls in root.__subclasses__():
        found.add(cls)
        found |= _all_event_classes(cls)
    return found


def _sample_value(type_text: str):
    if "tuple" in type_text:
        return (0.25, 0.75)
    return {
        "str": "sample",
        "int": 3,
        "float": 0.625,
        "bool": True,
    }[type_text]


def _sample_instance(cls):
    import dataclasses

    return cls(
        **{
            f.name: _sample_value(f.type)
            for f in dataclasses.fields(cls)
        }
    )


class TestJsonRoundTrip:
    """to_json/from_json must cover every event type, bit-exactly."""

    def test_registry_covers_every_event_class(self):
        assert _all_event_classes() == set(EVENT_TYPES.values())

    @pytest.mark.parametrize(
        "kind", sorted(EVENT_TYPES), ids=sorted(EVENT_TYPES)
    )
    def test_every_event_type_round_trips(self, kind):
        event = _sample_instance(EVENT_TYPES[kind])
        payload = json.loads(json.dumps(event.to_json()))
        rebuilt = Event.from_json(payload)
        assert rebuilt == event
        assert type(rebuilt) is type(event)

    def test_defaulted_fields_round_trip(self):
        event = CellFinished(
            problem_id="p", run_index=1, passed=False, score=0.5, seconds=0.1
        )
        assert Event.from_json(event.to_json()) == event

    def test_missing_optional_field_uses_default(self):
        payload = TestbenchReady(total_checks=4, regen_index=2).to_json()
        del payload["regen_index"]
        assert Event.from_json(payload) == TestbenchReady(total_checks=4)

    def test_unknown_fields_are_ignored(self):
        payload = EarlyFinish(reason="initial-pass").to_json()
        payload["added_in_v2"] = "whatever"
        assert Event.from_json(payload) == EarlyFinish(reason="initial-pass")

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            Event.from_json({"kind": "no-such-event"})

    def test_missing_required_field_raises_value_error(self):
        with pytest.raises(ValueError, match="bad 'run-started'"):
            Event.from_json({"kind": "run-started", "system": "mage"})

    def test_live_solve_stream_round_trips(self):
        """A real run's whole event stream survives the JSON boundary."""
        result = _solve("fs_vending", 2)
        wire = json.dumps([e.to_json() for e in result.events])
        rebuilt = [Event.from_json(p) for p in json.loads(wire)]
        assert rebuilt == list(result.events)

    def test_transcript_from_deserialized_events_is_byte_identical(self):
        """The satellite parity contract: a transcript rebuilt from
        JSON-round-tripped events renders byte-identically to one built
        from the live stream."""
        for pid, seed in [("cb_mux2", 0), ("fs_vending", 2), ("fs_traffic", 4)]:
            result = _solve(pid, seed)
            wire = [json.loads(json.dumps(e.to_json())) for e in result.events]
            rebuilt_events = [Event.from_json(p) for p in wire]
            live = transcript_from_events(result.events, task_name=pid)
            rebuilt = transcript_from_events(rebuilt_events, task_name=pid)
            assert rebuilt.render() == live.render()
            assert rebuilt.render() == result.transcript.render()


class TestTranscriptParity:
    """The event-derived transcript must match the legacy engine's
    string log byte-for-byte (the Fig. 2/4 extractors and the CLI read
    it)."""

    def test_rebuild_from_events_matches_solve_transcript(self):
        for pid, seed in [("cb_mux2", 0), ("fs_vending", 2), ("fs_traffic", 4)]:
            result = _solve(pid, seed)
            rebuilt = transcript_from_events(result.events, task_name=pid)
            assert rebuilt.render() == result.transcript.render()
            assert rebuilt.initial_score == result.transcript.initial_score
            assert rebuilt.candidate_scores == result.transcript.candidate_scores
            assert rebuilt.selected_scores == result.transcript.selected_scores
            assert (
                rebuilt.debug_round_scores
                == result.transcript.debug_round_scores
            )
            assert rebuilt.tb_regens == result.transcript.tb_regens
            assert rebuilt.llm_calls == result.transcript.llm_calls
            assert rebuilt.stage_reached == result.transcript.stage_reached

    def test_legacy_note_formats(self):
        """Exact legacy note strings, stage tags included."""
        result = _solve("fs_vending", 2)
        text = result.transcript.render()
        assert "[step1] testbench generated:" in text
        assert "checkpointed checks" in text
        assert "[step2] initial RTL generated" in text
        assert "[step2] initial candidate score" in text

    def test_llm_call_accounting_matches_stage_events(self):
        result = _solve("fs_vending", 2)
        per_stage = sum(
            e.llm_calls for e in result.events if isinstance(e, StageFinished)
        )
        assert per_stage == result.transcript.llm_calls > 0


class TestFigureParity:
    """ScoreSeries.fold_events must extract exactly what the legacy
    field-based extractor read off the transcript."""

    def test_fold_events_matches_transcript_fields(self):
        for pid, seed in [("fs_vending", 2), ("fs_traffic", 4), ("cb_mux2", 0)]:
            result = _solve(pid, seed)
            from_events = ScoreSeries()
            from_events.fold_events(result.events)

            legacy = ScoreSeries()
            transcript = result.transcript
            if transcript.initial_score is not None and transcript.candidate_scores:
                legacy.initial_scores.append(transcript.initial_score)
                legacy.sampled_best_scores.append(
                    max(transcript.candidate_scores)
                )
            for index, scores in enumerate(transcript.debug_round_scores):
                legacy.add_round(index, scores)

            assert from_events.initial_scores == legacy.initial_scores
            assert from_events.sampled_best_scores == legacy.sampled_best_scores
            assert from_events.rounds == legacy.rounds

    def test_direct_pass_contributes_nothing(self):
        result = _solve("cb_kmap_mux", 0)  # passes before Step 4
        series = ScoreSeries()
        series.fold_events(result.events)
        assert series.initial_scores == []
        assert series.rounds == []
