"""Unit tests for the Step-4 sampler and Step-5 debug loop in isolation."""

from repro.agents.debug_agent import DebugAgent
from repro.agents.judge_agent import JudgeAgent
from repro.agents.rtl_agent import RTLAgent
from repro.core.config import MAGEConfig
from repro.core.debug_loop import debug_candidates
from repro.core.sampling import sample_and_rank
from repro.core.scoring import ScoredCandidate
from repro.core.task import DesignTask
from repro.evalsets import get_problem, golden_testbench
from repro.llm import SimLLM


def make_agents(model="claude-3.5-sonnet"):
    llm = SimLLM(model)
    return llm, RTLAgent(llm), JudgeAgent(llm), DebugAgent(llm)


class TestSampler:
    def test_pool_size_and_selection(self):
        problem = get_problem("fs_vending")
        task = DesignTask.from_problem(problem)
        tb = golden_testbench(problem)
        _, rtl, judge, _ = make_agents()
        config = MAGEConfig.high_temperature().with_seed(3)
        outcome = sample_and_rank(task, None, tb, rtl, judge, config)
        assert len(outcome.candidates) == config.candidates
        assert len(outcome.selected) == config.top_k
        assert outcome.best_score == max(outcome.scores)

    def test_extra_candidates_join_the_pool(self):
        problem = get_problem("fs_vending")
        task = DesignTask.from_problem(problem)
        tb = golden_testbench(problem)
        _, rtl, judge, _ = make_agents()
        config = MAGEConfig.high_temperature().with_seed(1)
        seeded = ScoredCandidate(
            problem.golden, judge.score(problem.golden, tb, problem.top)
        )
        outcome = sample_and_rank(
            task, None, tb, rtl, judge, config, extra=[seeded]
        )
        assert len(outcome.candidates) == config.candidates + 1
        # A perfect extra candidate must always survive selection.
        assert any(c.source == problem.golden for c in outcome.selected)

    def test_sampling_disabled(self):
        problem = get_problem("fs_vending")
        task = DesignTask.from_problem(problem)
        tb = golden_testbench(problem)
        _, rtl, judge, _ = make_agents()
        from dataclasses import replace

        config = replace(MAGEConfig.high_temperature(), use_sampling=False)
        seeded = ScoredCandidate(
            problem.golden, judge.score(problem.golden, tb, problem.top)
        )
        outcome = sample_and_rank(task, None, tb, rtl, judge, config, extra=[seeded])
        assert len(outcome.candidates) == 1


class TestDebugLoop:
    def _failing_selection(self, llm, judge, problem, tb, seeds=40):
        from repro.llm.interface import SamplingParams
        from repro.llm.simllm import extract_code_block
        from repro.llm.interface import ChatMessage

        for seed in range(seeds):
            params = SamplingParams(0.85, 0.95, 1, seed=seed)
            reply = llm.complete(
                [
                    ChatMessage(
                        "user",
                        "Write a synthesizable Verilog module that implements "
                        f"the specification.\n\n## Specification\n{problem.spec}\n",
                    )
                ],
                params,
            )
            code = extract_code_block(reply)
            report = judge.score(code, tb, problem.top)
            if report.error is None and 0 < report.score < 1:
                return [ScoredCandidate(code, report)]
        return []

    def test_rounds_never_regress(self):
        problem = get_problem("cb_kmap_mux")
        task = DesignTask.from_problem(problem)
        tb = golden_testbench(problem)
        llm, _, judge, debug = make_agents()
        selected = self._failing_selection(llm, judge, problem, tb)
        if not selected:
            return  # no buggy candidate under these seeds
        config = MAGEConfig.high_temperature().with_seed(0)
        outcome = debug_candidates(task, tb, selected, debug, judge, config)
        means = [sum(r) / len(r) for r in outcome.round_scores if r]
        for earlier, later in zip(means, means[1:]):
            assert later >= earlier - 1e-9  # Eq. 4 rollback guarantee

    def test_stops_early_on_success(self):
        problem = get_problem("cb_mux2")
        task = DesignTask.from_problem(problem)
        tb = golden_testbench(problem)
        llm, _, judge, debug = make_agents()
        perfect = ScoredCandidate(
            problem.golden, judge.score(problem.golden, tb, problem.top)
        )
        config = MAGEConfig.high_temperature().with_seed(0)
        outcome = debug_candidates(task, tb, [perfect], debug, judge, config)
        assert len(outcome.round_scores) == 1  # no rounds executed
        assert outcome.best.passed

    def test_error_candidates_skipped(self):
        problem = get_problem("cb_mux2")
        task = DesignTask.from_problem(problem)
        tb = golden_testbench(problem)
        llm, _, judge, debug = make_agents()
        broken = ScoredCandidate(
            "module broken (", judge.score("module broken (", tb, problem.top)
        )
        config = MAGEConfig.high_temperature().with_seed(0)
        outcome = debug_candidates(task, tb, [broken], debug, judge, config)
        assert outcome.best.report.error is not None
