"""Eq. 2-4 selection algebra."""

from repro.core.scoring import ScoredCandidate, best_candidate, better, select_top_k
from repro.tb.runner import CheckRecord, TestReport
from repro.tb.stimulus import TbStep, Testbench
from repro.hdl.values import LogicVec

import pytest


def fake_report(mismatches: int, total: int) -> TestReport:
    tb = Testbench(kind="comb", inputs=("a",), outputs=("y",), steps=())
    report = TestReport(testbench=tb)
    for index in range(total):
        ok = index >= mismatches
        value = LogicVec.from_int(1, 1)
        report.records.append(
            CheckRecord(
                step=index,
                time=index * 10,
                signal="y",
                expected=value,
                actual=value if ok else LogicVec.from_int(0, 1),
                ok=ok,
                inputs={},
            )
        )
    return report


def cand(name: str, mismatches: int, total: int = 10) -> ScoredCandidate:
    return ScoredCandidate(source=name, report=fake_report(mismatches, total))


class TestScore:
    def test_score_formula(self):
        assert cand("a", 3).score == pytest.approx(0.7)

    def test_perfect(self):
        c = cand("a", 0)
        assert c.passed and c.score == 1.0

    def test_error_report_scores_zero(self):
        tb = Testbench(
            kind="comb",
            inputs=("a",),
            outputs=("y",),
            steps=(TbStep({"a": 1}, {"y": LogicVec.from_int(1, 1)}),),
        )
        report = TestReport(testbench=tb, error="boom")
        assert report.score == 0.0 and report.mismatches == report.total_checks


class TestTopK:
    def test_selects_best(self):
        pool = [cand("a", 5), cand("b", 1), cand("c", 3)]
        picked = select_top_k(pool, 2)
        assert [c.source for c in picked] == ["b", "c"]

    def test_stable_on_ties(self):
        pool = [cand("a", 2), cand("b", 2), cand("c", 2)]
        picked = select_top_k(pool, 2)
        assert [c.source for c in picked] == ["a", "b"]

    def test_k_larger_than_pool(self):
        pool = [cand("a", 1)]
        assert len(select_top_k(pool, 5)) == 1

    def test_k_zero(self):
        assert select_top_k([cand("a", 0)], 0) == []


class TestAcceptRollback:
    def test_improvement_accepted(self):
        incumbent, trial = cand("old", 4), cand("new", 1)
        assert better(incumbent, trial).source == "new"

    def test_regression_rolled_back(self):
        incumbent, trial = cand("old", 1), cand("new", 4)
        assert better(incumbent, trial).source == "old"

    def test_tie_keeps_incumbent(self):
        incumbent, trial = cand("old", 2), cand("new", 2)
        assert better(incumbent, trial).source == "old"


class TestBestCandidate:
    def test_best(self):
        pool = [cand("a", 5), cand("b", 0)]
        assert best_candidate(pool).source == "b"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            best_candidate([])
