"""Benchmark-suite integrity: every golden design must earn a perfect
score on its own golden testbench, and suites must be well-formed."""

import pytest

from repro.evalsets import (
    all_problems,
    get_problem,
    get_suite,
    golden_testbench,
    input_steps,
    suite_names,
)
from repro.evalsets.problem import Problem, derive_testbench
from repro.hdl.lint import lint
from repro.tb.runner import run_testbench


class TestRegistry:
    def test_problem_count(self, problems):
        assert len(problems) >= 40

    def test_unique_ids(self, problems):
        ids = [p.id for p in problems]
        assert len(ids) == len(set(ids))

    def test_categories_covered(self, problems):
        categories = {p.category for p in problems}
        assert categories == {
            "combinational",
            "arithmetic",
            "sequential",
            "fsm",
            "memory",
        }

    def test_difficulty_spread(self, problems):
        difficulties = [p.difficulty for p in problems]
        assert min(difficulties) < 0.1 and max(difficulties) > 0.8

    def test_get_problem(self):
        assert get_problem("cb_mux4").id == "cb_mux4"

    def test_get_unknown_problem(self):
        with pytest.raises(KeyError):
            get_problem("nonexistent")

    def test_difficulty_validation(self):
        with pytest.raises(ValueError):
            Problem(
                id="bad",
                title="t",
                category="fsm",
                difficulty=2.0,
                spec="s",
                golden="module m (input a); endmodule",
                top="m",
                kind="comb",
            )


class TestSuites:
    def test_suite_names(self):
        assert suite_names() == [
            "rtllm-like",
            "verilogeval-human-v1",
            "verilogeval-v2",
        ]

    def test_v2_is_superset(self):
        v1 = {p.id for p in get_suite("verilogeval-human-v1")}
        v2 = {p.id for p in get_suite("verilogeval-v2")}
        assert v1 < v2

    def test_v1_excludes_memory(self):
        assert all(p.category != "memory" for p in get_suite("verilogeval-human-v1"))

    def test_calibrated_suites_frozen(self):
        # Adding library problems must never change the paper suites.
        v2 = [p.id for p in get_suite("verilogeval-v2")]
        assert len(v2) == 41
        assert not any(pid.startswith("ex_") for pid in v2)

    def test_rtllm_suite_disjoint_from_core(self):
        extra = {p.id for p in get_suite("rtllm-like")}
        core = {p.id for p in get_suite("verilogeval-v2")}
        assert extra and not (extra & core)

    def test_unknown_suite(self):
        with pytest.raises(KeyError):
            get_suite("verilogeval-v99")


class TestGoldenIntegrity:
    def test_all_goldens_lint_clean(self, problems):
        for problem in problems:
            assert lint(problem.golden, problem.top).ok, problem.id

    def test_all_goldens_pass_their_testbench(self, problems):
        for problem in problems:
            tb = golden_testbench(problem)
            report = run_testbench(problem.golden, tb, problem.top)
            assert report.passed, (
                f"{problem.id}: {report.mismatches}/{report.total_checks}"
            )

    def test_testbenches_have_enough_checks(self, problems):
        for problem in problems:
            tb = golden_testbench(problem)
            assert tb.total_checks >= 10, problem.id

    def test_specs_are_substantive(self, problems):
        for problem in problems:
            assert len(problem.spec) > 60, problem.id

    def test_ports_derivable(self, problems):
        for problem in problems:
            assert problem.outputs, problem.id
            assert problem.data_inputs, problem.id
            if problem.kind == "clocked":
                assert problem.clock in problem.design().inputs


class TestStimulus:
    def test_input_steps_deterministic(self):
        problem = get_problem("sq_counter_ud")
        assert input_steps(problem, seed=1) == input_steps(problem, seed=1)

    def test_input_steps_vary_with_seed(self):
        problem = get_problem("sq_counter_ud")
        assert input_steps(problem, seed=1) != input_steps(problem, seed=2)

    def test_directed_prefix_preserved(self):
        problem = get_problem("sq_counter_ud")
        steps = input_steps(problem, seed=3)
        assert steps[: len(problem.directed)] == [dict(v) for v in problem.directed]

    def test_random_policy_respected(self):
        problem = get_problem("sq_dff_ar")  # areset probability 0.1
        steps = input_steps(problem, n_random=200, seed=5)
        random_part = steps[len(problem.directed):]
        reset_rate = sum(s["areset"] for s in random_part) / len(random_part)
        assert 0.02 < reset_rate < 0.25

    def test_n_random_zero(self):
        problem = get_problem("cb_mux2")
        steps = input_steps(problem, n_random=0)
        assert len(steps) == len(problem.directed)


class TestDeriveTestbench:
    def test_expected_values_match_simulation(self):
        problem = get_problem("cb_mux2")
        steps = [{"a": 1, "b": 2, "sel": 0}, {"sel": 1}]
        tb = derive_testbench(
            problem.golden,
            problem.top,
            "comb",
            None,
            problem.data_inputs,
            problem.outputs,
            steps,
        )
        assert tb.steps[0].checks["out"].to_uint() == 1
        assert tb.steps[1].checks["out"].to_uint() == 2

    def test_all_x_outputs_skipped(self):
        problem = get_problem("sq_tff")
        # No reset applied: q stays x for a while; those checks vanish.
        steps = [{"reset": 0, "t": 0}] * 3
        tb = derive_testbench(
            problem.golden,
            problem.top,
            "clocked",
            "clk",
            problem.data_inputs,
            problem.outputs,
            steps,
        )
        assert tb.total_checks == 0

    def test_broken_golden_raises(self):
        from repro.hdl.errors import HdlError

        with pytest.raises((RuntimeError, HdlError)):
            derive_testbench(
                "module broken (", "broken", "comb", None, ("a",), ("y",), [{"a": 1}]
            )
