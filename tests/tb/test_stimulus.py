"""Testbench DSL: parsing, rendering, validation."""

import pytest

from repro.hdl.values import LogicVec
from repro.tb.stimulus import (
    TbStep,
    Testbench,
    TestbenchFormatError,
    parse_testbench,
    render_testbench,
)

BASIC = """
TESTBENCH clocked clock=clk
INPUTS rst en
OUTPUTS q carry
STEP rst=1 en=0 ; EXPECT q=0 carry=0
STEP rst=0 en=1 ; EXPECT q=1
STEP ; EXPECT q=2 carry=x
STEP en=0
"""


class TestParsing:
    def test_basic_structure(self):
        tb = parse_testbench(BASIC)
        assert tb.kind == "clocked" and tb.clock == "clk"
        assert tb.inputs == ("rst", "en")
        assert tb.outputs == ("q", "carry")
        assert len(tb.steps) == 4

    def test_sparse_inputs(self):
        tb = parse_testbench(BASIC)
        assert tb.steps[2].inputs == {}
        assert tb.steps[3].inputs == {"en": 0}

    def test_whole_signal_dont_care_dropped(self):
        tb = parse_testbench(BASIC)
        assert "carry" not in tb.steps[2].checks

    def test_hex_and_binary_values(self):
        tb = parse_testbench(
            "TESTBENCH comb\nINPUTS a\nOUTPUTS y\nSTEP a=0xFF ; EXPECT y=0b101\n"
        )
        assert tb.steps[0].inputs["a"] == 255
        assert tb.steps[0].checks["y"].to_uint() == 5

    def test_x_bits_in_expectation(self):
        tb = parse_testbench(
            "TESTBENCH comb\nINPUTS a\nOUTPUTS y\nSTEP a=1 ; EXPECT y=1x0\n"
        )
        assert tb.steps[0].checks["y"].to_bits() == "1x0"

    def test_comments_ignored(self):
        tb = parse_testbench("# hello\n" + BASIC + "# trailing\n")
        assert len(tb.steps) == 4

    def test_total_checks(self):
        assert parse_testbench(BASIC).total_checks == 4  # q*3 + carry*1

    def test_missing_header(self):
        with pytest.raises(TestbenchFormatError):
            parse_testbench("INPUTS a\nSTEP a=1\n")

    def test_bad_directive(self):
        with pytest.raises(TestbenchFormatError):
            parse_testbench("TESTBENCH comb\nBOGUS x\n")

    def test_bad_drive_token(self):
        with pytest.raises(TestbenchFormatError):
            parse_testbench("TESTBENCH comb\nINPUTS a\nSTEP a\n")

    def test_bad_expect_keyword(self):
        with pytest.raises(TestbenchFormatError):
            parse_testbench("TESTBENCH comb\nINPUTS a\nSTEP a=1 ; WANT y=1\n")


class TestRendering:
    def test_roundtrip(self):
        tb = parse_testbench(BASIC)
        assert parse_testbench(render_testbench(tb)) == tb

    def test_renders_x_patterns(self):
        tb = Testbench(
            kind="comb",
            inputs=("a",),
            outputs=("y",),
            steps=(TbStep({"a": 1}, {"y": LogicVec.from_bits("1x")}),),
        )
        assert "y=1x" in render_testbench(tb)


class TestValidation:
    def test_bad_kind(self):
        with pytest.raises(ValueError):
            Testbench(kind="sortof", inputs=(), outputs=(), steps=())

    def test_clocked_requires_clock(self):
        with pytest.raises(ValueError):
            Testbench(kind="clocked", inputs=(), outputs=(), steps=())

    def test_with_steps_preserves_metadata(self):
        tb = parse_testbench(BASIC)
        trimmed = tb.with_steps(tb.steps[:2])
        assert trimmed.clock == "clk" and len(trimmed.steps) == 2
