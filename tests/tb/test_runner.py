"""Testbench runner: scoring, don't-cares, failure accounting."""

from repro.tb.runner import run_testbench
from repro.tb.stimulus import parse_testbench

COUNTER = """
module counter (input clk, input rst, input en, output reg [3:0] q);
    always @(posedge clk) begin
        if (rst) q <= 0;
        else if (en) q <= q + 1;
    end
endmodule
"""

COUNTER_TB = """
TESTBENCH clocked clock=clk
INPUTS rst en
OUTPUTS q
STEP rst=1 en=0 ; EXPECT q=0
STEP rst=0 en=1 ; EXPECT q=1
STEP ; EXPECT q=2
STEP en=0 ; EXPECT q=2
STEP en=1 ; EXPECT q=3
"""

MUX = """
module mux (input [3:0] a, input [3:0] b, input s, output [3:0] y);
    assign y = s ? b : a;
endmodule
"""


class TestScoring:
    def test_correct_design_scores_one(self):
        report = run_testbench(COUNTER, parse_testbench(COUNTER_TB))
        assert report.passed and report.score == 1.0
        assert report.total_checks == 5 and report.mismatches == 0

    def test_buggy_design_counts_mismatches(self):
        buggy = COUNTER.replace("else if (en) q <= q + 1;", "else q <= q + 1;")
        report = run_testbench(buggy, parse_testbench(COUNTER_TB))
        assert not report.passed
        assert report.mismatches == 2  # the two en=0-sensitive checks
        assert abs(report.score - (1 - 2 / 5)) < 1e-9

    def test_first_mismatch_is_earliest(self):
        buggy = COUNTER.replace("q <= q + 1;", "q <= q + 2;")
        report = run_testbench(buggy, parse_testbench(COUNTER_TB))
        first = report.first_mismatch
        assert first is not None and first.step == 1

    def test_mismatch_signals_breakdown(self):
        buggy = COUNTER.replace("q <= q + 1;", "q <= q + 2;")
        report = run_testbench(buggy, parse_testbench(COUNTER_TB))
        assert set(report.mismatch_signals()) == {"q"}

    def test_records_capture_inputs(self):
        report = run_testbench(COUNTER, parse_testbench(COUNTER_TB))
        assert report.records[1].inputs == {"rst": 0, "en": 1}


class TestErrorHandling:
    def test_compile_error_scores_zero(self):
        report = run_testbench("module broken (", parse_testbench(COUNTER_TB))
        assert report.error is not None
        assert report.score == 0.0 and not report.passed
        assert report.total_checks >= 1

    def test_elaboration_error_scores_zero(self):
        src = "module counter (input clk, output [3:0] q); assign q = ghost; endmodule"
        report = run_testbench(src, parse_testbench(COUNTER_TB))
        assert report.error is not None and "ghost" in report.error

    def test_unknown_output_counts_as_mismatch(self):
        tb = parse_testbench(
            "TESTBENCH comb\nINPUTS a b s\nOUTPUTS nope\nSTEP a=1 b=2 s=0 ; EXPECT nope=1\n"
        )
        report = run_testbench(MUX, tb)
        assert report.mismatches == 1

    def test_unknown_input_ignored(self):
        tb = parse_testbench(
            "TESTBENCH comb\nINPUTS a b s ghost\nOUTPUTS y\n"
            "STEP a=5 b=9 s=1 ghost=1 ; EXPECT y=9\n"
        )
        report = run_testbench(MUX, tb)
        assert report.passed


class TestDontCares:
    def test_x_bits_ignore_mismatch(self):
        tb = parse_testbench(
            "TESTBENCH comb\nINPUTS a b s\nOUTPUTS y\n"
            "STEP a=0b0101 b=0 s=0 ; EXPECT y=0xxx\n"
        )
        assert run_testbench(MUX, tb).passed

    def test_x_output_fails_concrete_expectation(self):
        src = "module m (input a, output [1:0] y); assign y[0] = a; endmodule"
        tb = parse_testbench(
            "TESTBENCH comb\nINPUTS a\nOUTPUTS y\nSTEP a=1 ; EXPECT y=0b11\n"
        )
        report = run_testbench(src, tb)  # y[1] undriven -> x
        assert not report.passed

    def test_x_output_passes_when_bit_dont_care(self):
        src = "module m (input a, output [1:0] y); assign y[0] = a; endmodule"
        tb = parse_testbench(
            "TESTBENCH comb\nINPUTS a\nOUTPUTS y\nSTEP a=1 ; EXPECT y=x1\n"
        )
        assert run_testbench(src, tb).passed


class TestClockedProtocol:
    def test_checks_observe_post_edge_state(self):
        report = run_testbench(COUNTER, parse_testbench(COUNTER_TB))
        # Step 1 expects q=1: the increment from the first enabled edge.
        assert report.records[1].ok

    def test_comb_testbench_on_comb_design(self):
        tb = parse_testbench(
            "TESTBENCH comb\nINPUTS a b s\nOUTPUTS y\n"
            "STEP a=3 b=12 s=0 ; EXPECT y=3\nSTEP s=1 ; EXPECT y=12\n"
        )
        assert run_testbench(MUX, tb).passed
