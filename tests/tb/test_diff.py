"""Waveform diffing between candidate designs."""

from repro.evalsets import get_problem, golden_testbench
from repro.tb.diff import diff_waveforms
from repro.tb.stimulus import parse_testbench

MUX = """
module mux (input [3:0] a, input [3:0] b, input s, output [3:0] y);
    assign y = s ? b : a;
endmodule
"""

MUX_SWAPPED = MUX.replace("s ? b : a", "s ? a : b")

TB = parse_testbench(
    "TESTBENCH comb\nINPUTS a b s\nOUTPUTS y\n"
    "STEP a=1 b=2 s=0 ; EXPECT y=1\n"
    "STEP s=1 ; EXPECT y=2\n"
    "STEP a=7 b=7 ; EXPECT y=7\n"
)


class TestDiff:
    def test_identical_designs(self):
        diff = diff_waveforms(MUX, MUX, TB)
        assert diff.identical
        assert diff.steps_compared == 3
        assert "identical" in diff.render()

    def test_divergence_located(self):
        diff = diff_waveforms(MUX, MUX_SWAPPED, TB)
        assert not diff.identical
        # Steps 0 and 1 diverge; step 2 (a == b) agrees.
        assert [d.step for d in diff.divergences] == [0, 1]
        first = diff.first
        assert first.signal == "y"
        assert first.left.to_uint() == 1 and first.right.to_uint() == 2

    def test_render_contains_inputs(self):
        diff = diff_waveforms(MUX, MUX_SWAPPED, TB)
        text = diff.render()
        assert "left=1" in text and "right=2" in text and "s=0" in text

    def test_render_limit(self):
        diff = diff_waveforms(MUX, MUX_SWAPPED, TB)
        assert "more" in diff.render(limit=1)

    def test_compile_error_side(self):
        diff = diff_waveforms(MUX, "module broken (", TB)
        assert not diff.identical and diff.right_error is not None
        assert "cannot diff" in diff.render()

    def test_golden_vs_mutant_on_real_problem(self):
        problem = get_problem("sq_counter_ud")
        tb = golden_testbench(problem)
        mutant = problem.golden.replace("count + 8'd1", "count + 8'd2")
        diff = diff_waveforms(problem.golden, mutant, tb, problem.top)
        assert not diff.identical
        assert all(d.signal == "count" for d in diff.divergences)
