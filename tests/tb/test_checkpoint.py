"""State checkpoints: Eq. 5 earliest mismatch, Eq. 6 window, feedback."""

from repro.tb.checkpoint import (
    checkpoints_from_report,
    earliest_mismatch,
    mismatch_window,
    render_checkpoint_feedback,
    render_logonly_feedback,
)
from repro.tb.runner import run_testbench
from repro.tb.stimulus import parse_testbench
from repro.tb.textlog import render_textlog

COUNTER = """
module counter (input clk, input rst, input en, output reg [3:0] q);
    always @(posedge clk) begin
        if (rst) q <= 0;
        else if (en) q <= q + 1;
    end
endmodule
"""

TB = parse_testbench(
    "TESTBENCH clocked clock=clk\nINPUTS rst en\nOUTPUTS q\n"
    "STEP rst=1 en=0 ; EXPECT q=0\n"
    "STEP rst=0 en=1 ; EXPECT q=1\n"
    "STEP ; EXPECT q=2\n"
    "STEP ; EXPECT q=3\n"
    "STEP ; EXPECT q=4\n"
    "STEP ; EXPECT q=5\n"
)

BUGGY = COUNTER.replace("q <= q + 1;", "q <= q + 2;")


def report_for(source):
    return run_testbench(source, TB)


class TestCheckpoints:
    def test_one_checkpoint_per_checked_step(self):
        cps = checkpoints_from_report(report_for(COUNTER))
        assert len(cps) == 6
        assert all(cp.ok for cp in cps)

    def test_earliest_mismatch_time(self):
        cp = earliest_mismatch(report_for(BUGGY))
        assert cp is not None and cp.step == 1  # first enabled increment

    def test_earliest_mismatch_none_on_pass(self):
        assert earliest_mismatch(report_for(COUNTER)) is None

    def test_mismatching_signals(self):
        cp = earliest_mismatch(report_for(BUGGY))
        assert cp.mismatching_signals() == ["q"]

    def test_window_ends_at_first_mismatch(self):
        window = mismatch_window(report_for(BUGGY), window=2)
        assert [cp.step for cp in window] == [0, 1]
        assert window[-1].ok is False

    def test_window_clamps_at_zero(self):
        window = mismatch_window(report_for(BUGGY), window=50)
        assert window[0].step == 0

    def test_window_empty_on_pass(self):
        assert mismatch_window(report_for(COUNTER)) == []

    def test_late_mismatch_window_excludes_old_steps(self):
        late_bug = COUNTER.replace(
            "else if (en) q <= q + 1;",
            "else if (en) begin if (q == 4'd3) q <= 4'd9; else q <= q + 1; end",
        )
        window = mismatch_window(report_for(late_bug), window=2)
        steps = [cp.step for cp in window]
        assert steps == [steps[-1] - 2, steps[-1] - 1, steps[-1]]


class TestFeedbackRendering:
    def test_checkpoint_feedback_contains_got_expected(self):
        text = render_checkpoint_feedback(report_for(BUGGY))
        assert "First mismatch at time" in text
        assert "Got q=" in text and "expected q=" in text
        assert "Inputs:" in text

    def test_checkpoint_feedback_on_pass(self):
        assert "passed" in render_checkpoint_feedback(report_for(COUNTER))

    def test_logonly_feedback_is_aggregate(self):
        text = render_logonly_feedback(report_for(BUGGY))
        assert "has" in text and "mismatches" in text
        assert "Got" not in text  # no per-edge values leak

    def test_error_feedback(self):
        report = run_testbench("module broken (", TB)
        assert "SIMULATION ERROR" in render_checkpoint_feedback(report)
        assert "SIMULATION ERROR" in render_logonly_feedback(report)


class TestTextlog:
    def test_full_log_has_all_rows(self):
        text = render_textlog(report_for(COUNTER))
        assert text.count("\n") >= 7  # header + separator + 6 rows
        assert "q(dut)" in text and "q(exp)" in text

    def test_mismatch_marker(self):
        text = render_textlog(report_for(BUGGY))
        assert "MISMATCH" in text and "ok" in text

    def test_step_filter(self):
        text = render_textlog(report_for(COUNTER), only_steps={0, 1})
        assert text.count("ok") == 2

    def test_max_rows_truncates(self):
        text = render_textlog(report_for(COUNTER), max_rows=3)
        assert "..." in text

    def test_no_records(self):
        tb = parse_testbench("TESTBENCH comb\nINPUTS a\nOUTPUTS y\nSTEP a=1\n")
        report = run_testbench("module m (input a, output y); assign y = a; endmodule", tb)
        assert render_textlog(report) == "no checks were performed"
