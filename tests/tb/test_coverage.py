"""Toggle-coverage measurement."""

from repro.evalsets import get_problem, golden_testbench
from repro.tb.coverage import measure_toggle_coverage
from repro.tb.stimulus import parse_testbench

COUNTER = """
module counter (input clk, input rst, input en, output reg [3:0] q);
    always @(posedge clk) begin
        if (rst) q <= 0;
        else if (en) q <= q + 1;
    end
endmodule
"""


def tb_from(steps: str):
    return parse_testbench(
        "TESTBENCH clocked clock=clk\nINPUTS rst en\nOUTPUTS q\n" + steps
    )


class TestToggleCoverage:
    def test_rich_stimulus_covers_counter_bits(self):
        steps = "STEP rst=1 en=0\nSTEP rst=0 en=1\n" + "STEP\n" * 20 + "STEP rst=1\n"
        coverage = measure_toggle_coverage(COUNTER, tb_from(steps))
        assert coverage.per_signal["q"] >= 0.75
        assert 0.0 < coverage.fraction <= 1.0

    def test_weak_stimulus_scores_low(self):
        weak = measure_toggle_coverage(COUNTER, tb_from("STEP rst=1 en=0\nSTEP\n"))
        rich = measure_toggle_coverage(
            COUNTER, tb_from("STEP rst=1 en=0\nSTEP rst=0 en=1\n" + "STEP\n" * 20 + "STEP rst=1\n")
        )
        assert weak.fraction < rich.fraction

    def test_weakest_lists_ascending(self):
        steps = "STEP rst=1 en=0\nSTEP rst=0 en=1\nSTEP\n"
        coverage = measure_toggle_coverage(COUNTER, tb_from(steps))
        weakest = coverage.weakest(3)
        values = [v for _, v in weakest]
        assert values == sorted(values)

    def test_render(self):
        steps = "STEP rst=1 en=0\nSTEP rst=0 en=1\nSTEP\n"
        coverage = measure_toggle_coverage(COUNTER, tb_from(steps))
        text = coverage.render()
        assert "toggle coverage" in text and "q" in text

    def test_compile_error_yields_empty(self):
        coverage = measure_toggle_coverage("module broken (", tb_from("STEP rst=1\n"))
        assert coverage.fraction == 0.0
        assert coverage.report is not None and coverage.report.error

    def test_golden_testbenches_have_reasonable_coverage(self):
        # The derived golden testbenches should exercise designs well.
        for pid in ["sq_counter_ud", "fs_seq_det_1011", "cb_mux4"]:
            problem = get_problem(pid)
            coverage = measure_toggle_coverage(
                problem.golden, golden_testbench(problem), problem.top
            )
            assert coverage.fraction > 0.5, (pid, coverage.render())
