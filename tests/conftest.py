"""Shared fixtures for the test suite."""

import pytest

from repro.evalsets import all_problems, get_problem, golden_testbench


@pytest.fixture(scope="session")
def problems():
    """All registered benchmark problems."""
    return all_problems()


@pytest.fixture(scope="session")
def mux_problem():
    """The Fig. 3 style K-map mux problem."""
    return get_problem("cb_kmap_mux")


@pytest.fixture(scope="session")
def counter_problem():
    return get_problem("sq_counter_ud")


@pytest.fixture(scope="session")
def mux_golden_tb(mux_problem):
    return golden_testbench(mux_problem)


@pytest.fixture(scope="session")
def counter_golden_tb(counter_problem):
    return golden_testbench(counter_problem)
