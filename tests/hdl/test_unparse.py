"""Unparser tests: round-trip stability and semantic preservation."""

import pytest

from repro.evalsets import all_problems, golden_testbench
from repro.hdl.parser import parse_expr_text, parse_module
from repro.hdl.unparse import unparse_expr, unparse_module
from repro.tb.runner import run_testbench


class TestExpressionRendering:
    @pytest.mark.parametrize(
        "text",
        [
            "a + b * c",
            "(a + b) * c",
            "a ? b : c",
            "{a, b, {2{c}}}",
            "~(a & b) | ^c",
            "x[3:0]",
            "x[i +: 4]",
            "x[i -: 2]",
            "a << (b + 1)",
            "$signed(a) >>> 2",
            "a === 4'b1xx0",
            "f(a, b)",
            "!(a < b) && (c >= d)",
        ],
    )
    def test_expr_roundtrip_preserves_structure(self, text):
        first = parse_expr_text(text)
        rendered = unparse_expr(first)
        second = parse_expr_text(rendered)
        assert unparse_expr(second) == rendered

    def test_parens_added_for_precedence(self):
        # (a | b) & c must not render as a | b & c.
        expr = parse_expr_text("(a | b) & c")
        rendered = unparse_expr(expr)
        again = parse_expr_text(rendered)
        assert unparse_expr(again) == rendered
        assert "(" in rendered

    def test_number_spelling_preserved(self):
        expr = parse_expr_text("8'hFF + 2")
        assert "8'hFF" in unparse_expr(expr)


class TestModuleRoundtrip:
    def test_all_golden_designs_roundtrip_stably(self, problems):
        for problem in problems:
            module = parse_module(problem.golden, problem.top)
            once = unparse_module(module)
            twice = unparse_module(parse_module(once, problem.top))
            assert once == twice, f"{problem.id} unparse not stable"

    def test_roundtrip_preserves_behaviour(self, problems):
        # The round-tripped source must still pass the golden testbench.
        for problem in problems[::5]:  # sample for speed
            module = parse_module(problem.golden, problem.top)
            rendered = unparse_module(module)
            report = run_testbench(
                rendered, golden_testbench(problem), problem.top
            )
            assert report.passed, f"{problem.id} behaviour changed by unparse"

    def test_hierarchy_rendering(self):
        src = (
            "module sub (input x, output y); assign y = ~x; endmodule\n"
            "module top (input a, output b);\n"
            "    sub #(.W(1)) u0 (.x(a), .y(b));\nendmodule"
        )
        module = parse_module(src, "top")
        rendered = unparse_module(module)
        assert "sub #(.W(1)) u0" in rendered
