"""Property-based tests: LogicVec must agree with Python integer
semantics on fully-known values, and preserve structural invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl.values import LogicVec

widths = st.integers(min_value=1, max_value=64)


@st.composite
def known_pair(draw):
    """Two fully-known vectors of one width."""
    width = draw(widths)
    mask = (1 << width) - 1
    a = draw(st.integers(min_value=0, max_value=mask))
    b = draw(st.integers(min_value=0, max_value=mask))
    return LogicVec.from_int(a, width), LogicVec.from_int(b, width), width


@st.composite
def any_vec(draw):
    """A vector that may contain x bits."""
    width = draw(widths)
    mask = (1 << width) - 1
    val = draw(st.integers(min_value=0, max_value=mask))
    xmask = draw(st.integers(min_value=0, max_value=mask))
    return LogicVec(width, val, xmask)


@given(known_pair())
def test_add_matches_python(pair):
    a, b, width = pair
    assert a.add(b).to_uint() == (a.to_uint() + b.to_uint()) & ((1 << width) - 1)


@given(known_pair())
def test_sub_matches_python(pair):
    a, b, width = pair
    assert a.sub(b).to_uint() == (a.to_uint() - b.to_uint()) & ((1 << width) - 1)


@given(known_pair())
def test_mul_matches_python(pair):
    a, b, width = pair
    assert a.mul(b).to_uint() == (a.to_uint() * b.to_uint()) & ((1 << width) - 1)


@given(known_pair())
def test_bitwise_matches_python(pair):
    a, b, _ = pair
    assert a.bit_and(b).to_uint() == a.to_uint() & b.to_uint()
    assert a.bit_or(b).to_uint() == a.to_uint() | b.to_uint()
    assert a.bit_xor(b).to_uint() == a.to_uint() ^ b.to_uint()


@given(known_pair())
def test_comparisons_match_python(pair):
    a, b, _ = pair
    assert a.lt(b).is_true() == (a.to_uint() < b.to_uint())
    assert a.ge(b).is_true() == (a.to_uint() >= b.to_uint())
    assert a.eq(b).is_true() == (a.to_uint() == b.to_uint())


@given(known_pair())
def test_signed_comparisons_match_python(pair):
    a, b, _ = pair
    sa, sb = a.as_signed(), b.as_signed()
    assert sa.lt(sb).is_true() == (sa.to_int() < sb.to_int())


@given(any_vec())
def test_invariant_val_disjoint_from_xmask(v):
    assert v.val & v.xmask == 0


@given(any_vec())
def test_double_not_is_identity(v):
    assert v.bit_not().bit_not() == v


@given(any_vec())
def test_to_bits_roundtrip(v):
    assert LogicVec.from_bits(v.to_bits()) == LogicVec(v.width, v.val, v.xmask)


@given(any_vec(), widths)
def test_resize_then_back_preserves_low_bits(v, new_width):
    grown = v.resize(v.width + new_width)
    back = grown.resize(v.width)
    assert back.val == v.val and back.xmask == v.xmask


@given(any_vec(), any_vec())
def test_concat_slices_back(a, b):
    joined = LogicVec.concat([a, b])
    assert joined.width == a.width + b.width
    hi = joined.slice(joined.width - 1, b.width)
    lo = joined.slice(b.width - 1, 0)
    assert (hi.val, hi.xmask) == (a.val, a.xmask)
    assert (lo.val, lo.xmask) == (b.val, b.xmask)


@given(any_vec())
def test_case_eq_reflexive(v):
    assert v.case_eq(v).is_true()


@given(any_vec(), any_vec())
def test_and_or_de_morgan(a, b):
    b = b.resize(a.width) if b.width < a.width else b
    a2 = a.resize(b.width) if a.width < b.width else a
    left = a2.bit_and(b).bit_not()
    right = a2.bit_not().bit_or(b.bit_not())
    assert left == right


@given(any_vec())
def test_reduce_or_false_means_all_zero(v):
    if v.reduce_or().is_false():
        assert v.val == 0 and v.xmask == 0


@given(known_pair())
@settings(max_examples=60)
def test_shift_matches_python(pair):
    a, b, width = pair
    amount = LogicVec.from_int(b.to_uint() % (width + 2), 8)
    mask = (1 << width) - 1
    assert a.shl(amount).to_uint() == (a.to_uint() << amount.to_uint()) & mask
    assert a.shr(amount).to_uint() == a.to_uint() >> amount.to_uint()


@given(any_vec())
def test_truth_trichotomy(v):
    t = v.truth()
    assert t.is_true() + t.is_false() + t.has_x == 1
