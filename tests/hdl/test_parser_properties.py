"""Property-based frontend tests: generated expressions must round-trip
through unparse -> parse and evaluate identically."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import ast_nodes as ast
from repro.hdl.compile import simulate
from repro.hdl.parser import parse_expr_text
from repro.hdl.unparse import unparse_expr
from repro.hdl.values import LogicVec

_BIN_OPS = ["+", "-", "*", "&", "|", "^", "<<", ">>", "==", "!=", "<", ">="]
_UN_OPS = ["~", "-", "&", "|", "^", "!"]


@st.composite
def expressions(draw, depth=3):
    """Random expression ASTs over identifiers a, b and small literals."""
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return ast.Ident(name=draw(st.sampled_from(["a", "b"])))
        value = draw(st.integers(0, 255))
        return ast.Number(value=LogicVec.from_int(value, 8))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return ast.Binary(
            op=draw(st.sampled_from(_BIN_OPS)),
            left=draw(expressions(depth=depth - 1)),
            right=draw(expressions(depth=depth - 1)),
        )
    if kind == 1:
        return ast.Unary(
            op=draw(st.sampled_from(_UN_OPS)),
            operand=draw(expressions(depth=depth - 1)),
        )
    if kind == 2:
        return ast.Ternary(
            cond=draw(expressions(depth=depth - 1)),
            then=draw(expressions(depth=depth - 1)),
            els=draw(expressions(depth=depth - 1)),
        )
    return ast.Concat(
        parts=(
            draw(expressions(depth=depth - 1)),
            draw(expressions(depth=depth - 1)),
        )
    )


def _width_cap(text: str) -> bool:
    # Concats of concats can exceed practical widths; keep tests sane.
    return len(text) < 400


@given(expressions())
@settings(max_examples=120, deadline=None)
def test_unparse_parse_fixpoint(expr):
    """unparse(parse(unparse(e))) == unparse(e): rendering is stable."""
    rendered = unparse_expr(expr)
    reparsed = parse_expr_text(rendered)
    assert unparse_expr(reparsed) == rendered


@given(expressions(), st.integers(0, 255), st.integers(0, 255))
@settings(max_examples=60, deadline=None)
def test_roundtrip_preserves_evaluation(expr, a, b):
    """A round-tripped expression computes the same value in simulation."""
    rendered = unparse_expr(expr)
    if not _width_cap(rendered):
        return
    source = (
        "module t (input [7:0] a, input [7:0] b, output wire [15:0] y);\n"
        f"    assign y = {rendered};\nendmodule"
    )
    sim1 = simulate(source)
    sim1.step({"a": a, "b": b})
    reparsed = unparse_expr(parse_expr_text(rendered))
    sim2 = simulate(source.replace(rendered, reparsed))
    sim2.step({"a": a, "b": b})
    assert sim1.peek("y") == sim2.peek("y")
