"""Unit tests for the Verilog tokenizer."""

import pytest

from repro.hdl.errors import LexError
from repro.hdl.lexer import TokKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]  # drop EOF


class TestBasics:
    def test_empty_source_is_just_eof(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind is TokKind.EOF

    def test_identifiers_and_keywords(self):
        toks = tokenize("module foo_1 endmodule")
        assert toks[0].kind is TokKind.KEYWORD
        assert toks[1].kind is TokKind.IDENT
        assert toks[1].text == "foo_1"

    def test_source_ending_mid_identifier(self):
        # Regression: "" in "_$" is vacuously True; must not hang.
        toks = tokenize("endmodule")
        assert toks[0].text == "endmodule"

    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].loc.line, toks[0].loc.col) == (1, 1)
        assert (toks[1].loc.line, toks[1].loc.col) == (2, 3)

    def test_dollar_names(self):
        toks = tokenize("$display $signed")
        assert all(t.kind is TokKind.SYSNAME for t in toks[:-1])


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\n y */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")

    def test_compiler_directives_skipped(self):
        assert texts("`timescale 1ns/1ps\nmodule") == ["module"]


class TestOperators:
    def test_longest_match(self):
        assert texts("a <<< b") == ["a", "<<<", "b"]
        assert texts("a <= b") == ["a", "<=", "b"]
        assert texts("a === b") == ["a", "===", "b"]

    def test_reduction_prefixes(self):
        assert texts("~&a") == ["~&", "a"]
        assert texts("~^a") == ["~^", "a"]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a \x01 b")


class TestNumbers:
    def test_unsized_decimal_is_32bit_signed(self):
        tok = tokenize("42")[0]
        assert tok.kind is TokKind.NUMBER
        assert tok.value.width == 32 and tok.value.signed
        assert tok.value.to_uint() == 42

    def test_sized_hex(self):
        tok = tokenize("8'hFF")[0]
        assert tok.value.width == 8 and tok.value.to_uint() == 255

    def test_sized_binary_with_x(self):
        tok = tokenize("4'b1x0z")[0]
        assert tok.value.to_bits() == "1x0x"

    def test_sized_octal(self):
        tok = tokenize("6'o52")[0]
        assert tok.value.to_uint() == 0o52

    def test_signed_marker(self):
        tok = tokenize("8'sd5")[0]
        assert tok.value.signed

    def test_underscores_in_digits(self):
        tok = tokenize("16'hAB_CD")[0]
        assert tok.value.to_uint() == 0xABCD

    def test_decimal_x(self):
        tok = tokenize("4'dx")[0]
        assert tok.value.has_x

    def test_space_between_size_and_base(self):
        tok = tokenize("4 'b1010")[0]
        assert tok.value.to_uint() == 10

    def test_default_width_32(self):
        tok = tokenize("'h10")[0]
        assert tok.value.width == 32 and tok.value.to_uint() == 16

    def test_bad_base(self):
        with pytest.raises(LexError):
            tokenize("4'q1010")

    def test_bad_digit_for_base(self):
        with pytest.raises(LexError):
            tokenize("4'b1021")

    def test_zero_width_rejected(self):
        with pytest.raises(LexError):
            tokenize("0'b0")

    def test_truncation_to_declared_width(self):
        tok = tokenize("4'hFF")[0]
        assert tok.value.to_uint() == 0xF


class TestStrings:
    def test_string_literal(self):
        toks = tokenize('"hello"')
        assert toks[0].kind is TokKind.STRING and toks[0].text == "hello"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')
