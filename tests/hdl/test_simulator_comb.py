"""Combinational simulation semantics, checked through real modules."""

import pytest

from repro.hdl.compile import simulate
from repro.hdl.errors import SimulationError


def eval_expr(expr, width=8, **inputs):
    """Evaluate a Verilog expression over 8-bit inputs a, b and 1-bit c."""
    sim = simulate(
        f"module t (input [7:0] a, input [7:0] b, input c,\n"
        f"          output wire [{width - 1}:0] y);\n"
        f"    assign y = {expr};\nendmodule"
    )
    sim.step({name: value for name, value in inputs.items()})
    return sim.peek("y")


class TestExpressionSemantics:
    def test_add_carry_with_concat_target(self):
        sim = simulate(
            "module t (input [7:0] a, input [7:0] b, input c,\n"
            "          output [7:0] s, output co);\n"
            "    assign {co, s} = a + b + c;\nendmodule"
        )
        sim.step({"a": 255, "b": 255, "c": 1})
        assert sim.peek("s").to_uint() == 255
        assert sim.peek("co").to_uint() == 1

    def test_context_widening_in_comparison_operand(self):
        # a + b inside a comparison must not widen to the target width;
        # operands are self-determined at max(a, b) width.
        value = eval_expr("(a + b) > 8'd10", width=1, a=200, b=100)
        assert value.to_uint() == int(((200 + 100) & 0xFF) > 10)

    def test_ternary(self):
        assert eval_expr("c ? a : b", a=1, b=2, c=1).to_uint() == 1
        assert eval_expr("c ? a : b", a=1, b=2, c=0).to_uint() == 2

    def test_reduction_in_condition(self):
        assert eval_expr("(&a) ? 8'd1 : 8'd0", a=0xFF, b=0, c=0).to_uint() == 1

    def test_shift_by_variable(self):
        assert eval_expr("a << b[2:0]", a=1, b=3, c=0).to_uint() == 8

    def test_arithmetic_right_shift(self):
        assert eval_expr("$signed(a) >>> 2", a=0x80, b=0, c=0).to_uint() == 0xE0

    def test_part_select(self):
        assert eval_expr("a[7:4]", width=4, a=0xAB, b=0, c=0).to_uint() == 0xA

    def test_indexed_part_select(self):
        assert eval_expr("a[b[2:0] +: 4]", width=4, a=0xAB, b=4, c=0).to_uint() == 0xA

    def test_bit_select_with_x_index_reads_x(self):
        sim = simulate(
            "module t (input [7:0] a, output y);\n"
            "    wire [2:0] idx;\n"
            "    assign y = a[idx];\nendmodule"
        )
        sim.step({"a": 0xFF})
        assert sim.peek("y").has_x  # idx is undriven

    def test_concat_and_replicate(self):
        assert eval_expr("{b[3:0], {4{c}}}", a=0, b=0x5, c=1).to_uint() == 0x5F

    def test_signed_function(self):
        assert eval_expr("$signed(b) < 0 ? 8'd1 : 8'd0", a=0, b=0x80, c=0).to_uint() == 1

    def test_clog2_runtime(self):
        assert eval_expr("$clog2(a)", a=16, b=0, c=0).to_uint() == 4


class TestAlwaysComb:
    def test_case_statement(self):
        sim = simulate(
            "module t (input [1:0] s, output reg [3:0] y);\n"
            "always @(*) begin\n"
            "    case (s)\n"
            "        2'd0: y = 4'd1;\n"
            "        2'd1: y = 4'd2;\n"
            "        2'd2: y = 4'd4;\n"
            "        default: y = 4'd8;\n"
            "    endcase\nend\nendmodule"
        )
        for s, expected in [(0, 1), (1, 2), (2, 4), (3, 8)]:
            sim.step({"s": s})
            assert sim.peek("y").to_uint() == expected

    def test_casez_wildcards(self):
        sim = simulate(
            "module t (input [3:0] req, output reg [1:0] g);\n"
            "always @(*) begin\n"
            "    casez (req)\n"
            "        4'b1???: g = 2'd3;\n"
            "        4'b01??: g = 2'd2;\n"
            "        4'b001?: g = 2'd1;\n"
            "        default: g = 2'd0;\n"
            "    endcase\nend\nendmodule"
        )
        for req, expected in [(0b1000, 3), (0b0101, 2), (0b0010, 1), (0b0001, 0)]:
            sim.step({"req": req})
            assert sim.peek("g").to_uint() == expected

    def test_first_matching_case_arm_wins(self):
        sim = simulate(
            "module t (input [1:0] s, output reg y);\n"
            "always @(*) begin\n"
            "    casez (s)\n"
            "        2'b1?: y = 1'b1;\n"
            "        2'b11: y = 1'b0;\n"
            "        default: y = 1'b0;\n"
            "    endcase\nend\nendmodule"
        )
        sim.step({"s": 3})
        assert sim.peek("y").to_uint() == 1

    def test_latch_holds_value(self):
        sim = simulate(
            "module t (input en, input d, output reg q);\n"
            "always @(*) if (en) q = d;\nendmodule"
        )
        sim.step({"en": 1, "d": 1})
        assert sim.peek("q").to_uint() == 1
        sim.step({"en": 0, "d": 0})
        assert sim.peek("q").to_uint() == 1  # latched

    def test_chained_comb_propagation(self):
        sim = simulate(
            "module t (input [3:0] a, output [3:0] d);\n"
            "    wire [3:0] b, c;\n"
            "    assign b = a + 1;\n"
            "    assign c = b << 1;\n"
            "    assign d = c ^ 4'hF;\nendmodule"
        )
        sim.step({"a": 3})
        assert sim.peek("d").to_uint() == ((((3 + 1) << 1) & 0xF) ^ 0xF)

    def test_for_loop_popcount(self):
        sim = simulate(
            "module t (input [7:0] a, output reg [3:0] n);\n"
            "integer i;\n"
            "always @(*) begin\n"
            "    n = 0;\n"
            "    for (i = 0; i < 8; i = i + 1) n = n + {3'b0, a[i]};\n"
            "end\nendmodule"
        )
        sim.step({"a": 0xB7})
        assert sim.peek("n").to_uint() == bin(0xB7).count("1")

    def test_function_call(self):
        sim = simulate(
            "module t (input [7:0] a, output [7:0] y);\n"
            "function [7:0] swap;\n"
            "    input [7:0] v;\n"
            "    swap = {v[3:0], v[7:4]};\n"
            "endfunction\n"
            "assign y = swap(a);\nendmodule"
        )
        sim.step({"a": 0xA5})
        assert sim.peek("y").to_uint() == 0x5A

    def test_self_feedback_runs_once_per_trigger(self):
        # Real simulators miss events raised while the process runs.
        sim = simulate(
            "module t (input a, output reg x);\n"
            "always @(*) x = ~x ^ a;\nendmodule"
        )
        sim.step({"a": 1})  # must not raise / hang

    def test_x_ring_settles_at_x(self):
        # A cross-coupled ring with undefined state reaches an x fixpoint.
        sim = simulate(
            "module t (input a, output wire y);\n"
            "    wire p;\n"
            "    wire q;\n"
            "    assign p = ~q & a;\n"
            "    assign q = ~p & a;\n"
            "    assign y = q;\nendmodule"
        )
        sim.step({"a": 1})
        assert sim.peek("y").has_x

    def test_cross_process_oscillation_detected(self):
        # A ring whose logic maps x to defined values truly oscillates
        # (the case default fires for an x subject), and must be caught.
        sim_src = (
            "module t (input a, output reg q);\n"
            "    reg r;\n"
            "    always @(*) case (q) 1'b0: r = 1'b1; default: r = 1'b0; endcase\n"
            "    always @(*) q = r;\nendmodule"
        )
        with pytest.raises(SimulationError):
            simulate(sim_src)

    def test_display_logging(self):
        sim = simulate(
            "module t (input [3:0] a, output [3:0] y);\n"
            "    assign y = a;\n"
            "    initial $display(42);\nendmodule"
        )
        assert any("42" in line for line in sim.display_log)

    def test_poke_non_input_rejected(self):
        sim = simulate("module t (input a, output y); assign y = a; endmodule")
        with pytest.raises(SimulationError):
            sim.poke("y", 1)

    def test_peek_unknown_signal(self):
        sim = simulate("module t (input a, output y); assign y = a; endmodule")
        with pytest.raises(SimulationError):
            sim.peek("nope")
