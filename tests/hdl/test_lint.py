"""Lint diagnostics: the syntax gate of the agents' fix loop."""

from repro.hdl.lint import lint


class TestErrors:
    def test_clean_module(self):
        report = lint("module m (input a, output y); assign y = a; endmodule")
        assert report.ok and report.design is not None

    def test_parse_error_reported_with_line(self):
        report = lint("module m (input a, output y)\nassign y = a;\nendmodule")
        assert not report.ok
        assert report.errors[0].line is not None

    def test_undeclared_identifier(self):
        report = lint("module m (input a, output y); assign y = nope; endmodule")
        assert not report.ok and "undeclared" in report.errors[0].message

    def test_procedural_assign_to_wire(self):
        report = lint(
            "module m (input a, output wire y); always @(*) y = a; endmodule"
        )
        assert any("declare it as 'reg'" in d.message for d in report.errors)

    def test_continuous_assign_to_reg(self):
        report = lint(
            "module m (input a, output reg y); assign y = a; endmodule"
        )
        assert any("continuous assignment to reg" in d.message for d in report.errors)

    def test_multiple_drivers(self):
        report = lint(
            "module m (input a, input b, output y);\n"
            "assign y = a;\nassign y = b;\nendmodule"
        )
        assert any("multiple drivers" in d.message for d in report.errors)

    def test_driving_an_input(self):
        report = lint("module m (input a, output y);\n"
                      "assign a = 1'b0;\nassign y = a;\nendmodule")
        assert any("input port" in d.message for d in report.errors)


class TestWarnings:
    def test_case_without_default_warns(self):
        report = lint(
            "module m (input [1:0] s, output reg y);\n"
            "always @(*) case (s) 2'd0: y = 1'b0; 2'd1: y = 1'b1; endcase\n"
            "endmodule"
        )
        assert report.ok
        assert any("default" in d.message for d in report.warnings)

    def test_clocked_case_without_default_is_fine(self):
        report = lint(
            "module m (input clk, input [1:0] s, output reg y);\n"
            "always @(posedge clk) case (s) 2'd0: y <= 1'b0; 2'd1: y <= 1'b1; endcase\n"
            "endmodule"
        )
        assert not any("default" in d.message for d in report.warnings)

    def test_undriven_signal_warns(self):
        report = lint(
            "module m (input a, output y); wire w; assign y = a & w; endmodule"
        )
        assert any("never driven" in d.message for d in report.warnings)

    def test_unread_signal_warns(self):
        report = lint(
            "module m (input a, output y);\n"
            "wire w;\nassign w = a;\nassign y = a;\nendmodule"
        )
        assert any("never read" in d.message for d in report.warnings)

    def test_render_includes_severity(self):
        report = lint("module m (input a, output y); assign y = b; endmodule")
        assert report.render().startswith("error:")

    def test_clean_render(self):
        report = lint("module m (input a, output y); assign y = a; endmodule")
        assert report.render() == "clean: no diagnostics"


class TestGoldenDesignsAreClean:
    def test_all_golden_designs_lint_without_errors(self, problems):
        for problem in problems:
            report = lint(problem.golden, problem.top)
            assert report.ok, f"{problem.id}: {report.render()}"
