"""Unit tests for the recursive-descent Verilog parser."""

import pytest

from repro.hdl import ast_nodes as ast
from repro.hdl.errors import ParseError
from repro.hdl.parser import parse_expr_text, parse_module, parse_source


def parse_expr(text: str) -> ast.Expr:
    return parse_expr_text(text)


class TestModuleStructure:
    def test_ansi_ports(self):
        m = parse_module(
            "module m (input wire a, output reg [3:0] b); endmodule"
        )
        assert m.ports == ("a", "b")
        decls = [i for i in m.items if isinstance(i, ast.PortDecl)]
        assert decls[1].net_kind == "reg"

    def test_ansi_port_continuation(self):
        m = parse_module("module m (input [1:0] a, b, output y); endmodule")
        assert m.ports == ("a", "b", "y")
        decls = [i for i in m.items if isinstance(i, ast.PortDecl)]
        assert decls[0].range is not None and decls[1].range is not None

    def test_classic_ports(self):
        m = parse_module(
            "module m (a, y); input a; output y; assign y = a; endmodule"
        )
        assert m.ports == ("a", "y")

    def test_header_parameters(self):
        m = parse_module(
            "module m #(parameter W = 8, D = 2) (input [W-1:0] a); endmodule"
        )
        params = [i for i in m.items if isinstance(i, ast.ParamDecl)]
        assert [p.name for p in params] == ["W", "D"]

    def test_multiple_modules(self):
        src = parse_source(
            "module a (input x); endmodule\nmodule b (input y); endmodule"
        )
        assert [m.name for m in src.modules] == ["a", "b"]
        assert src.module().name == "b"
        assert src.module("a").name == "a"

    def test_missing_module_keyword(self):
        with pytest.raises(ParseError):
            parse_module("endmodule")

    def test_unterminated_module(self):
        with pytest.raises(ParseError):
            parse_module("module m (input a); assign")

    def test_empty_source(self):
        with pytest.raises(ParseError):
            parse_source("   ")


class TestDeclarations:
    def test_wire_with_init(self):
        m = parse_module("module m (input a); wire w = a & 1'b1; endmodule")
        decl = next(i for i in m.items if isinstance(i, ast.NetDecl))
        assert decl.init is not None

    def test_reg_init_rejected(self):
        with pytest.raises(ParseError):
            parse_module("module m (input a); reg r = 1'b0; endmodule")

    def test_memory_array(self):
        m = parse_module("module m (input a); reg [7:0] mem [0:15]; endmodule")
        decl = next(i for i in m.items if isinstance(i, ast.NetDecl))
        assert decl.array_range is not None

    def test_integer_decl(self):
        m = parse_module("module m (input a); integer i, j; endmodule")
        decl = next(i for i in m.items if isinstance(i, ast.NetDecl))
        assert decl.net_kind == "integer" and decl.names == ("i", "j")

    def test_localparam(self):
        m = parse_module("module m (input a); localparam X = 3, Y = 4; endmodule")
        params = [i for i in m.items if isinstance(i, ast.ParamDecl)]
        assert all(p.local for p in params) and len(params) == 2

    def test_signed_declaration(self):
        m = parse_module("module m (input signed [7:0] a); endmodule")
        decl = next(i for i in m.items if isinstance(i, ast.PortDecl))
        assert decl.signed


class TestStatements:
    def _body(self, stmt_text):
        m = parse_module(
            f"module m (input clk, input a, output reg q);\n"
            f"always @(posedge clk) {stmt_text}\nendmodule"
        )
        block = next(i for i in m.items if isinstance(i, ast.AlwaysBlock))
        return block.body

    def test_nonblocking_assign(self):
        body = self._body("q <= a;")
        assert isinstance(body, ast.NonblockingAssign)

    def test_blocking_assign(self):
        body = self._body("begin q = a; end")
        assert isinstance(body.stmts[0], ast.BlockingAssign)

    def test_if_else_chain(self):
        body = self._body("if (a) q <= 1; else if (!a) q <= 0; else q <= a;")
        assert isinstance(body, ast.If)
        assert isinstance(body.else_stmt, ast.If)

    def test_case_with_default(self):
        body = self._body(
            "case (a) 1'b0: q <= 0; 1'b1: q <= 1; default: q <= a; endcase"
        )
        assert isinstance(body, ast.Case)
        assert body.items[-1].exprs == ()

    def test_case_multiple_labels(self):
        body = self._body("case (a) 1'b0, 1'b1: q <= 1; endcase")
        assert len(body.items[0].exprs) == 2

    def test_casez(self):
        body = self._body("casez (a) 1'b?: q <= 1; endcase")
        assert body.kind == "casez"

    def test_for_loop(self):
        m = parse_module(
            "module m (input a, output reg [3:0] q);\n"
            "integer i;\n"
            "always @(*) for (i = 0; i < 4; i = i + 1) q[i] = a;\n"
            "endmodule"
        )
        block = next(i for i in m.items if isinstance(i, ast.AlwaysBlock))
        assert isinstance(block.body, ast.For)

    def test_named_block(self):
        body = self._body("begin : blk q <= a; end")
        assert body.name == "blk"

    def test_syscall_statement(self):
        body = self._body('begin $display("q=%d", q); end')
        assert isinstance(body.stmts[0], ast.SysCall)

    def test_null_statement(self):
        body = self._body("begin ; end")
        assert isinstance(body.stmts[0], ast.NullStmt)

    def test_concat_lvalue(self):
        m = parse_module(
            "module m (input [1:0] a, output wire c, output wire [1:0] s);\n"
            "assign {c, s} = a + 1;\nendmodule"
        )
        assign = next(i for i in m.items if isinstance(i, ast.ContinuousAssign))
        assert isinstance(assign.target, ast.Concat)

    def test_missing_assign_op(self):
        with pytest.raises(ParseError):
            parse_module("module m (input a, output reg q); always @(*) q; endmodule")


class TestSensitivity:
    def _sens(self, text):
        m = parse_module(
            f"module m (input clk, input rst, input a, output reg q);\n"
            f"always {text} q <= a;\nendmodule"
        )
        return next(i for i in m.items if isinstance(i, ast.AlwaysBlock)).sensitivity

    def test_star_forms(self):
        assert self._sens("@(*)").star
        assert self._sens("@*").star

    def test_posedge(self):
        s = self._sens("@(posedge clk)")
        assert s.is_clocked and s.events[0].edge == "pos"

    def test_dual_edge_or(self):
        s = self._sens("@(posedge clk or negedge rst)")
        assert [e.edge for e in s.events] == ["pos", "neg"]

    def test_comma_separator(self):
        s = self._sens("@(posedge clk, negedge rst)")
        assert len(s.events) == 2

    def test_level_sensitive_list(self):
        s = self._sens("@(a or rst)")
        assert not s.is_clocked and len(s.events) == 2


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("a + b * c")
        assert isinstance(e, ast.Binary) and e.op == "+"
        assert isinstance(e.right, ast.Binary) and e.right.op == "*"

    def test_precedence_shift_vs_relational(self):
        e = parse_expr("a << 1 < b")
        assert e.op == "<" and e.left.op == "<<"

    def test_power_right_assoc(self):
        e = parse_expr("a ** b ** c")
        assert e.op == "**" and isinstance(e.right, ast.Binary)

    def test_ternary_nesting(self):
        e = parse_expr("a ? b : c ? d : f")
        assert isinstance(e, ast.Ternary) and isinstance(e.els, ast.Ternary)

    def test_unary_reduction(self):
        e = parse_expr("^a & b")
        assert e.op == "&" and isinstance(e.left, ast.Unary)

    def test_concat_and_replicate(self):
        e = parse_expr("{a, {3{b}}, c}")
        assert isinstance(e, ast.Concat)
        assert isinstance(e.parts[1], ast.Replicate)

    def test_replicate_of_concat(self):
        e = parse_expr("{2{a, b}}")
        assert isinstance(e, ast.Replicate)
        assert isinstance(e.inner, ast.Concat)

    def test_bit_and_part_select(self):
        e = parse_expr("x[3][2:1]")
        assert isinstance(e, ast.PartSelect)
        assert isinstance(e.base, ast.BitSelect)

    def test_indexed_part_select_up(self):
        e = parse_expr("x[i +: 4]")
        assert isinstance(e, ast.IndexedPartSelect) and not e.down

    def test_indexed_part_select_down(self):
        e = parse_expr("x[i -: 2]")
        assert isinstance(e, ast.IndexedPartSelect) and e.down

    def test_indexed_select_with_sum_start(self):
        e = parse_expr("x[i + 1 +: 4]")
        assert isinstance(e, ast.IndexedPartSelect)
        assert isinstance(e.start, ast.Binary)

    def test_function_call(self):
        e = parse_expr("f(a, b + 1)")
        assert isinstance(e, ast.FuncCall) and len(e.args) == 2

    def test_system_function(self):
        e = parse_expr("$signed(a)")
        assert isinstance(e, ast.FuncCall) and e.name == "$signed"

    def test_case_equality_ops(self):
        assert parse_expr("a === b").op == "==="
        assert parse_expr("a !== b").op == "!=="

    def test_parenthesised_select(self):
        e = parse_expr("(a + b)")
        assert isinstance(e, ast.Binary)


class TestInstances:
    def test_named_connections(self):
        m = parse_module(
            "module m (input a, output y);\n"
            "sub u0 (.x(a), .z(y));\nendmodule"
        )
        inst = next(i for i in m.items if isinstance(i, ast.Instance))
        assert inst.module_name == "sub" and inst.inst_name == "u0"
        assert [c.name for c in inst.ports] == ["x", "z"]

    def test_ordered_connections(self):
        m = parse_module("module m (input a, output y); sub u0 (a, y); endmodule")
        inst = next(i for i in m.items if isinstance(i, ast.Instance))
        assert all(c.name is None for c in inst.ports)

    def test_parameter_overrides(self):
        m = parse_module(
            "module m (input a); sub #(.W(4), .D(2)) u0 (.x(a)); endmodule"
        )
        inst = next(i for i in m.items if isinstance(i, ast.Instance))
        assert [p[0] for p in inst.params] == ["W", "D"]

    def test_ordered_parameter_overrides(self):
        m = parse_module("module m (input a); sub #(4) u0 (.x(a)); endmodule")
        inst = next(i for i in m.items if isinstance(i, ast.Instance))
        assert inst.params[0][0] is None

    def test_unconnected_port(self):
        m = parse_module("module m (input a); sub u0 (.x(a), .y()); endmodule")
        inst = next(i for i in m.items if isinstance(i, ast.Instance))
        assert inst.ports[1].expr is None


class TestFunctions:
    def test_function_decl(self):
        m = parse_module(
            "module m (input [3:0] a, output [3:0] y);\n"
            "function [3:0] inc;\n"
            "    input [3:0] v;\n"
            "    inc = v + 1;\n"
            "endfunction\n"
            "assign y = inc(a);\nendmodule"
        )
        fn = next(i for i in m.items if isinstance(i, ast.FunctionDecl))
        assert fn.name == "inc" and len(fn.inputs) == 1

    def test_function_with_locals(self):
        m = parse_module(
            "module m (input [3:0] a, output [3:0] y);\n"
            "function [3:0] popcnt;\n"
            "    input [3:0] v;\n"
            "    integer i;\n"
            "    begin\n"
            "        popcnt = 0;\n"
            "        for (i = 0; i < 4; i = i + 1) popcnt = popcnt + v[i];\n"
            "    end\n"
            "endfunction\n"
            "assign y = popcnt(a);\nendmodule"
        )
        fn = next(i for i in m.items if isinstance(i, ast.FunctionDecl))
        assert len(fn.locals) == 1
