"""Unit tests for the 4-state LogicVec value system."""

import pytest

from repro.hdl.values import LogicVec


class TestConstruction:
    def test_from_int_masks_to_width(self):
        assert LogicVec.from_int(0x1FF, 8).to_uint() == 0xFF

    def test_from_int_negative_two_complement(self):
        assert LogicVec.from_int(-1, 4).to_uint() == 0xF

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            LogicVec(0, 0)

    def test_from_bits_parses_x(self):
        v = LogicVec.from_bits("1x0z")
        assert v.width == 4
        assert v.to_bits() == "1x0x"  # z folds into x

    def test_from_bits_underscores_ignored(self):
        assert LogicVec.from_bits("1010_1010").to_uint() == 0xAA

    def test_from_bits_empty_rejected(self):
        with pytest.raises(ValueError):
            LogicVec.from_bits("")

    def test_from_bits_bad_char(self):
        with pytest.raises(ValueError):
            LogicVec.from_bits("102")

    def test_all_x(self):
        v = LogicVec.all_x(5)
        assert v.has_x and v.xmask == 0b11111

    def test_val_never_overlaps_xmask(self):
        v = LogicVec(4, 0b1111, 0b0101)
        assert v.val & v.xmask == 0
        assert v.to_bits() == "1x1x"


class TestInspection:
    def test_to_uint_rejects_x(self):
        with pytest.raises(ValueError):
            LogicVec.from_bits("1x").to_uint()

    def test_to_int_signed(self):
        assert LogicVec.from_int(0b1000, 4, signed=True).to_int() == -8
        assert LogicVec.from_int(0b0111, 4, signed=True).to_int() == 7

    def test_bit_out_of_range_is_x(self):
        v = LogicVec.from_int(3, 2)
        assert v.bit(5).has_x
        assert v.bit(-1).has_x

    def test_slice_basic(self):
        v = LogicVec.from_int(0b110101, 6)
        assert v.slice(3, 1).to_uint() == 0b010

    def test_slice_out_of_range_bits_are_x(self):
        v = LogicVec.from_int(0b11, 2)
        s = v.slice(3, 0)
        assert s.to_bits() == "xx11"

    def test_slice_bad_bounds(self):
        with pytest.raises(ValueError):
            LogicVec.from_int(1, 4).slice(0, 2)


class TestResize:
    def test_zero_extend_unsigned(self):
        assert LogicVec.from_int(0b10, 2).resize(4).to_bits() == "0010"

    def test_sign_extend_signed(self):
        v = LogicVec.from_int(0b10, 2, signed=True)
        assert v.resize(4).to_bits() == "1110"

    def test_x_sign_extends_as_x(self):
        v = LogicVec.from_bits("x1", signed=True)
        assert v.resize(4).to_bits() == "xxx1"

    def test_truncate(self):
        assert LogicVec.from_int(0b1101, 4).resize(2).to_bits() == "01"

    def test_resize_same_width_changes_signedness_only(self):
        v = LogicVec.from_int(5, 4).resize(4, signed=True)
        assert v.signed and v.to_uint() == 5


class TestBitwise:
    def test_and_dominance_zero_beats_x(self):
        a = LogicVec.from_bits("0x")
        b = LogicVec.from_bits("xx")
        assert a.bit_and(b).to_bits() == "0x"

    def test_or_dominance_one_beats_x(self):
        a = LogicVec.from_bits("1x")
        b = LogicVec.from_bits("xx")
        assert a.bit_or(b).to_bits() == "1x"

    def test_xor_any_x_is_x(self):
        a = LogicVec.from_bits("1x")
        b = LogicVec.from_bits("11")
        assert a.bit_xor(b).to_bits() == "0x"

    def test_not_preserves_x(self):
        assert LogicVec.from_bits("1x0").bit_not().to_bits() == "0x1"

    def test_xnor(self):
        a = LogicVec.from_bits("10")
        b = LogicVec.from_bits("11")
        assert a.bit_xnor(b).to_bits() == "10"

    def test_width_coercion(self):
        a = LogicVec.from_int(0b1, 1)
        b = LogicVec.from_int(0b1010, 4)
        assert a.bit_or(b).width == 4


class TestArithmetic:
    def test_add_wraps(self):
        a = LogicVec.from_int(255, 8)
        assert a.add(LogicVec.from_int(2, 8)).to_uint() == 1

    def test_add_with_x_is_all_x(self):
        a = LogicVec.from_bits("000x")
        r = a.add(LogicVec.from_int(1, 4))
        assert r.xmask == 0xF

    def test_sub(self):
        a = LogicVec.from_int(3, 8)
        assert a.sub(LogicVec.from_int(5, 8)).to_uint() == 254

    def test_signed_mul(self):
        a = LogicVec.from_int(-3, 8, signed=True)
        b = LogicVec.from_int(5, 8, signed=True)
        assert a.mul(b).as_signed().to_int() == -15

    def test_div_by_zero_is_x(self):
        a = LogicVec.from_int(7, 4)
        assert a.div(LogicVec.from_int(0, 4)).has_x

    def test_div_truncates_toward_zero_signed(self):
        a = LogicVec.from_int(-7, 8, signed=True)
        b = LogicVec.from_int(2, 8, signed=True)
        assert a.div(b).as_signed().to_int() == -3

    def test_mod_sign_follows_dividend(self):
        a = LogicVec.from_int(-7, 8, signed=True)
        b = LogicVec.from_int(2, 8, signed=True)
        assert a.mod(b).as_signed().to_int() == -1

    def test_pow(self):
        a = LogicVec.from_int(3, 8)
        assert a.pow(LogicVec.from_int(4, 8)).to_uint() == 81

    def test_neg(self):
        assert LogicVec.from_int(1, 4).neg().to_uint() == 0xF


class TestShifts:
    def test_shl_drops_high_bits(self):
        v = LogicVec.from_int(0b1001, 4)
        assert v.shl(LogicVec.from_int(1, 3)).to_bits() == "0010"

    def test_shr_zero_fills(self):
        v = LogicVec.from_int(0b1000, 4)
        assert v.shr(LogicVec.from_int(3, 3)).to_bits() == "0001"

    def test_ashr_sign_fills(self):
        v = LogicVec.from_int(0b1000, 4, signed=True)
        assert v.ashr(LogicVec.from_int(2, 3)).to_bits() == "1110"

    def test_ashr_unsigned_is_logical(self):
        v = LogicVec.from_int(0b1000, 4)
        assert v.ashr(LogicVec.from_int(2, 3)).to_bits() == "0010"

    def test_shift_by_x_is_all_x(self):
        v = LogicVec.from_int(1, 4)
        assert v.shl(LogicVec.from_bits("x")).xmask == 0xF

    def test_shift_moves_x_bits(self):
        v = LogicVec.from_bits("00x1")
        assert v.shl(LogicVec.from_int(1, 2)).to_bits() == "0x10"


class TestComparisons:
    def test_eq_known(self):
        a = LogicVec.from_int(5, 4)
        assert a.eq(LogicVec.from_int(5, 4)).is_true()
        assert a.eq(LogicVec.from_int(6, 4)).is_false()

    def test_eq_with_x_undecided(self):
        a = LogicVec.from_bits("1x")
        b = LogicVec.from_bits("11")
        assert a.eq(b).has_x

    def test_eq_decided_by_known_conflict(self):
        # 0x vs 11: bit 1 differs (0 vs 1) regardless of the x.
        a = LogicVec.from_bits("0x")
        b = LogicVec.from_bits("11")
        assert a.eq(b).is_false()
        assert a.neq(b).is_true()

    def test_case_eq_exact_pattern(self):
        a = LogicVec.from_bits("1x")
        assert a.case_eq(LogicVec.from_bits("1x")).is_true()
        assert a.case_eq(LogicVec.from_bits("11")).is_false()

    def test_relational_unsigned(self):
        a = LogicVec.from_int(200, 8)
        b = LogicVec.from_int(100, 8)
        assert a.gt(b).is_true()
        assert a.le(b).is_false()

    def test_relational_signed_when_both_signed(self):
        a = LogicVec.from_int(-1, 8, signed=True)
        b = LogicVec.from_int(1, 8, signed=True)
        assert a.lt(b).is_true()

    def test_relational_mixed_signedness_is_unsigned(self):
        a = LogicVec.from_int(-1, 8, signed=True)  # 255 unsigned
        b = LogicVec.from_int(1, 8, signed=False)
        assert a.lt(b).is_false()

    def test_relational_with_x(self):
        a = LogicVec.from_bits("x1")
        assert a.lt(LogicVec.from_int(2, 2)).has_x


class TestLogical:
    def test_and_short_circuit_false(self):
        x = LogicVec.all_x(4)
        zero = LogicVec.from_int(0, 4)
        assert zero.logical_and(x).is_false()

    def test_or_short_circuit_true(self):
        x = LogicVec.all_x(4)
        one = LogicVec.from_int(2, 4)
        assert one.logical_or(x).is_true()

    def test_not_x(self):
        assert LogicVec.all_x(1).logical_not().has_x

    def test_truth_values(self):
        assert LogicVec.from_int(2, 4).truth().is_true()
        assert LogicVec.from_int(0, 4).truth().is_false()
        assert LogicVec.from_bits("x0").truth().has_x


class TestReductions:
    def test_reduce_and(self):
        assert LogicVec.from_bits("111").reduce_and().is_true()
        assert LogicVec.from_bits("1x1").reduce_and().has_x
        assert LogicVec.from_bits("10x").reduce_and().is_false()

    def test_reduce_or(self):
        assert LogicVec.from_bits("00x").reduce_or().has_x
        assert LogicVec.from_bits("001").reduce_or().is_true()
        assert LogicVec.from_bits("000").reduce_or().is_false()

    def test_reduce_xor_parity(self):
        assert LogicVec.from_bits("1011").reduce_xor().is_true()
        assert LogicVec.from_bits("1001").reduce_xor().is_false()
        assert LogicVec.from_bits("1x01").reduce_xor().has_x

    def test_reduce_negated_forms(self):
        assert LogicVec.from_bits("111").reduce_nand().is_false()
        assert LogicVec.from_bits("000").reduce_nor().is_true()
        assert LogicVec.from_bits("11").reduce_xnor().is_true()


class TestComposition:
    def test_concat_msb_first(self):
        a = LogicVec.from_int(0b10, 2)
        b = LogicVec.from_int(0b011, 3)
        assert LogicVec.concat([a, b]).to_bits() == "10011"

    def test_concat_preserves_x(self):
        a = LogicVec.from_bits("x")
        b = LogicVec.from_bits("10")
        assert LogicVec.concat([a, b]).to_bits() == "x10"

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            LogicVec.concat([])

    def test_replicate(self):
        assert LogicVec.from_bits("10").replicate(3).to_bits() == "101010"

    def test_replicate_zero_rejected(self):
        with pytest.raises(ValueError):
            LogicVec.from_bits("1").replicate(0)

    def test_set_slice(self):
        v = LogicVec.from_int(0, 8)
        out = v.set_slice(5, 2, LogicVec.from_int(0b1111, 4))
        assert out.to_bits() == "00111100"

    def test_set_slice_with_x(self):
        v = LogicVec.from_int(0xFF, 8)
        out = v.set_slice(3, 2, LogicVec.from_bits("x0"))
        assert out.to_bits() == "1111x011"


class TestCaseMatching:
    def test_casez_item_x_is_dont_care(self):
        subject = LogicVec.from_bits("101")
        assert subject.matches_casez(LogicVec.from_bits("1x1"))
        assert not subject.matches_casez(LogicVec.from_bits("0x1"))

    def test_plain_case_needs_exact(self):
        subject = LogicVec.from_bits("1x")
        assert subject.matches_case(LogicVec.from_bits("1x"))
        assert not subject.matches_case(LogicVec.from_bits("11"))


class TestFormatting:
    def test_format_verilog(self):
        assert LogicVec.from_int(42, 8).format_verilog() == "8'd42"
        assert LogicVec.from_bits("1x").format_verilog() == "2'b1x"

    def test_format_display(self):
        assert LogicVec.from_int(9, 4).format_display() == "9"
        assert LogicVec.from_bits("1x0").format_display() == "1x0"

    def test_str(self):
        assert str(LogicVec.from_bits("01")) == "2'b01"
