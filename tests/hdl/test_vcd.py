"""VCD waveform export."""

import pytest

from repro.evalsets import get_problem, golden_testbench
from repro.hdl.compile import simulate
from repro.hdl.vcd import VcdRecorder, _identifier
from repro.tb.runner import run_testbench


class TestIdentifiers:
    def test_unique_and_printable(self):
        ids = [_identifier(i) for i in range(500)]
        assert len(set(ids)) == 500
        assert all(all(33 <= ord(c) <= 126 for c in i) for i in ids)


class TestManualRecording:
    def test_header_and_changes(self):
        sim = simulate(
            "module t (input clk, input d, output reg q);\n"
            "always @(posedge clk) q <= d;\nendmodule"
        )
        recorder = VcdRecorder(sim)
        sim.step({"clk": 0, "d": 1})
        recorder.snapshot()
        sim.step({"clk": 1})
        recorder.snapshot()
        text = recorder.render()
        assert "$timescale 1ns $end" in text
        assert "$var wire 1" in text
        assert "$enddefinitions $end" in text
        assert "#0" in text and "#10" in text

    def test_only_changes_emitted(self):
        sim = simulate("module t (input a, output y); assign y = a; endmodule")
        recorder = VcdRecorder(sim)
        sim.step({"a": 1})
        recorder.snapshot()
        recorder.snapshot()  # no change: no new timestamp section needed
        text = recorder.render()
        assert text.count("1!") <= 2  # initial dump only, not repeated

    def test_signal_filter(self):
        sim = simulate(
            "module t (input a, output y);\n"
            "wire mid;\nassign mid = ~a;\nassign y = ~mid;\nendmodule"
        )
        recorder = VcdRecorder(sim, signals=["a", "y"])
        sim.step({"a": 1})
        recorder.snapshot()
        text = recorder.render()
        assert " mid " not in text

    def test_x_values_rendered(self):
        sim = simulate("module t (input a, output [3:0] y); wire [3:0] w; assign y = w; endmodule")
        recorder = VcdRecorder(sim, signals=["y"])
        recorder.snapshot()
        assert "bxxxx" in recorder.render()

    def test_unbound_recorder_rejects(self):
        recorder = VcdRecorder.for_runner()
        with pytest.raises(ValueError):
            recorder.snapshot()
        with pytest.raises(ValueError):
            recorder.render()


class TestRunnerIntegration:
    def test_runner_hook_produces_full_trace(self, tmp_path):
        problem = get_problem("sq_counter_ud")
        tb = golden_testbench(problem)
        recorder = VcdRecorder.for_runner(signals=["count", "clk"])
        report = run_testbench(
            problem.golden, tb, problem.top, on_step=recorder.on_step
        )
        assert report.passed
        path = tmp_path / "trace.vcd"
        recorder.write(path)
        text = path.read_text()
        assert text.count("#") >= len(tb.steps)
        assert "$var wire 8" in text  # count[7:0]
