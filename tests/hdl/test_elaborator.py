"""Elaboration tests: parameters, hierarchy, renaming, diagnostics."""

import pytest

from repro.hdl.compile import compile_design
from repro.hdl.elaborator import const_eval, const_int
from repro.hdl.errors import ElaborationError
from repro.hdl.parser import parse_expr_text
from repro.hdl.values import LogicVec


def const(text, **params):
    env = {k: LogicVec.from_int(v, 32) for k, v in params.items()}
    return const_int(parse_expr_text(text), env)


class TestConstEval:
    def test_arithmetic(self):
        assert const("3 + 4 * 2") == 11

    def test_parameter_reference(self):
        assert const("W - 1", W=8) == 7

    def test_ternary(self):
        assert const("W > 4 ? 1 : 0", W=8) == 1

    def test_clog2(self):
        assert const("$clog2(16)") == 4
        assert const("$clog2(17)") == 5
        assert const("$clog2(1)") == 0

    def test_concat_replicate(self):
        env = {}
        v = const_eval(parse_expr_text("{2{2'b10}}"), env)
        assert v.to_bits() == "1010"

    def test_signal_reference_rejected(self):
        with pytest.raises(ElaborationError):
            const("undeclared + 1")


class TestSignals:
    def test_port_widths_and_direction(self):
        d = compile_design(
            "module m (input wire [7:0] a, output reg [3:0] q);\n"
            "always @(*) q = a[3:0];\nendmodule"
        )
        assert d.signals["a"].width == 8 and d.signals["a"].is_input
        assert d.signals["q"].kind == "reg" and d.signals["q"].is_output

    def test_parameterised_width(self):
        d = compile_design(
            "module m #(parameter W = 8) (input [W-1:0] a, output [W-1:0] y);\n"
            "assign y = a;\nendmodule"
        )
        assert d.signals["a"].width == 8

    def test_top_level_override(self):
        d = compile_design(
            "module m #(parameter W = 8) (input [W-1:0] a, output [W-1:0] y);\n"
            "assign y = a;\nendmodule",
            overrides={"W": 4},
        )
        assert d.signals["a"].width == 4

    def test_localparam_chain(self):
        d = compile_design(
            "module m #(parameter W = 4) (input [W-1:0] a, output [2*W-1:0] y);\n"
            "localparam D = W * 2;\n"
            "assign y = {{W{1'b0}}, a};\nendmodule"
        )
        assert d.signals["y"].width == 8

    def test_classic_port_reg_merge(self):
        d = compile_design(
            "module m (a, q); input a; output q; reg q;\n"
            "always @(*) q = a;\nendmodule"
        )
        assert d.signals["q"].kind == "reg"

    def test_nonzero_lsb_range(self):
        d = compile_design(
            "module m (input [7:4] a, output [3:0] y); assign y = a[7:4]; endmodule"
        )
        assert d.signals["a"].width == 4 and d.signals["a"].lsb == 4

    def test_memory(self):
        d = compile_design(
            "module m (input clk, input [1:0] w, input [7:0] v, output [7:0] q);\n"
            "reg [7:0] mem [0:3];\n"
            "always @(posedge clk) mem[w] <= v;\n"
            "assign q = mem[w];\nendmodule"
        )
        assert d.memories["mem"].size == 4 and d.memories["mem"].width == 8

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(ElaborationError):
            compile_design(
                "module m (input a); wire w; wire w; endmodule"
            )

    def test_undeclared_identifier(self):
        with pytest.raises(ElaborationError) as err:
            compile_design("module m (input a, output y); assign y = ghost; endmodule")
        assert "ghost" in str(err.value)

    def test_descending_vector_range_rejected(self):
        with pytest.raises(ElaborationError):
            compile_design("module m (input [0:7] a); endmodule")

    def test_inout_rejected(self):
        with pytest.raises(ElaborationError):
            compile_design("module m (inout a); endmodule")

    def test_port_without_direction(self):
        with pytest.raises(ElaborationError):
            compile_design("module m (a); assign a = 1'b0; endmodule")


class TestProcesses:
    def test_continuous_assign_is_comb(self):
        d = compile_design("module m (input a, output y); assign y = a; endmodule")
        proc = d.processes[0]
        assert proc.kind == "comb" and proc.continuous
        assert proc.reads == {"a"} and proc.writes == {"y"}

    def test_star_sensitivity_is_reads(self):
        d = compile_design(
            "module m (input a, input b, output reg y);\n"
            "always @(*) y = a ? b : 1'b0;\nendmodule"
        )
        proc = next(p for p in d.processes if not p.continuous)
        assert proc.reads == {"a", "b"}

    def test_clocked_edges(self):
        d = compile_design(
            "module m (input clk, input rst_n, input d, output reg q);\n"
            "always @(posedge clk or negedge rst_n)\n"
            "    if (!rst_n) q <= 0; else q <= d;\nendmodule"
        )
        proc = next(p for p in d.processes if p.kind == "clocked")
        assert set(proc.edges) == {("pos", "clk"), ("neg", "rst_n")}

    def test_mixed_edge_level_rejected(self):
        with pytest.raises(ElaborationError):
            compile_design(
                "module m (input clk, input a, output reg q);\n"
                "always @(posedge clk or a) q <= a;\nendmodule"
            )


class TestHierarchy:
    SRC = (
        "module leaf #(parameter W = 2) (input [W-1:0] x, output [W-1:0] y);\n"
        "    assign y = ~x;\nendmodule\n"
        "module top (input [3:0] a, output [3:0] b);\n"
        "    leaf #(.W(4)) u0 (.x(a), .y(b));\nendmodule"
    )

    def test_flattened_names(self):
        d = compile_design(self.SRC, "top")
        assert "u0.x" in d.signals and d.signals["u0.x"].width == 4

    def test_port_bindings_simulate(self):
        from repro.hdl.simulator import Simulation

        sim = Simulation(compile_design(self.SRC, "top"))
        sim.step({"a": 0b1010})
        assert sim.peek("b").to_uint() == 0b0101

    def test_ordered_connections(self):
        src = self.SRC.replace(".x(a), .y(b)", "a, b")
        d = compile_design(src, "top")
        assert "u0.x" in d.signals

    def test_missing_module(self):
        with pytest.raises(ElaborationError):
            compile_design("module top (input a); ghost u0 (.x(a)); endmodule")

    def test_unknown_port(self):
        with pytest.raises(ElaborationError):
            compile_design(self.SRC.replace(".x(a)", ".nope(a)"), "top")

    def test_unknown_param_override(self):
        with pytest.raises(ElaborationError):
            compile_design(self.SRC.replace("#(.W(4))", "#(.NOPE(4))"), "top")

    def test_recursive_instantiation_rejected(self):
        with pytest.raises(ElaborationError):
            compile_design(
                "module a (input x); a u (.x(x)); endmodule", "a"
            )

    def test_two_level_hierarchy(self):
        src = (
            "module inv (input x, output y); assign y = ~x; endmodule\n"
            "module mid (input x, output y); inv u (.x(x), .y(y)); endmodule\n"
            "module top (input a, output b); mid m (.x(a), .y(b)); endmodule"
        )
        d = compile_design(src, "top")
        assert "m.u.x" in d.signals
