"""Sequential simulation semantics: edges, NBA ordering, memories."""

from repro.hdl.compile import simulate


def clock(sim, cycles=1, **inputs):
    """Drive one or more full clock cycles (inputs applied while low)."""
    for _ in range(cycles):
        sim.step(inputs)
        sim.step({"clk": 1})
        sim.step({"clk": 0})
        inputs = {}


class TestRegisters:
    def test_dff_captures_on_posedge_only(self):
        sim = simulate(
            "module t (input clk, input d, output reg q);\n"
            "always @(posedge clk) q <= d;\nendmodule"
        )
        sim.step({"clk": 0, "d": 1})
        assert sim.peek("q").has_x  # nothing captured yet
        sim.step({"clk": 1})
        assert sim.peek("q").to_uint() == 1
        sim.step({"d": 0})  # changing d without an edge
        assert sim.peek("q").to_uint() == 1

    def test_negedge_dff(self):
        sim = simulate(
            "module t (input clk, input d, output reg q);\n"
            "always @(negedge clk) q <= d;\nendmodule"
        )
        sim.step({"clk": 1, "d": 1})
        sim.step({"clk": 0})
        assert sim.peek("q").to_uint() == 1

    def test_async_reset_fires_without_clock(self):
        sim = simulate(
            "module t (input clk, input rst_n, input d, output reg q);\n"
            "always @(posedge clk or negedge rst_n)\n"
            "    if (!rst_n) q <= 0; else q <= d;\nendmodule"
        )
        sim.step({"clk": 0, "rst_n": 1, "d": 1})
        sim.step({"clk": 1})
        assert sim.peek("q").to_uint() == 1
        sim.step({"rst_n": 0})  # no clock edge, reset alone
        assert sim.peek("q").to_uint() == 0

    def test_sync_reset_waits_for_clock(self):
        sim = simulate(
            "module t (input clk, input rst, input d, output reg q);\n"
            "always @(posedge clk) if (rst) q <= 0; else q <= d;\nendmodule"
        )
        sim.step({"clk": 0, "rst": 0, "d": 1})
        sim.step({"clk": 1})
        sim.step({"clk": 0, "rst": 1})
        assert sim.peek("q").to_uint() == 1  # reset not applied yet
        sim.step({"clk": 1})
        assert sim.peek("q").to_uint() == 0


class TestNonblockingSemantics:
    def test_swap_via_nba(self):
        sim = simulate(
            "module t (input clk, input load, output reg a, output reg b);\n"
            "always @(posedge clk) begin\n"
            "    if (load) begin a <= 1'b1; b <= 1'b0; end\n"
            "    else begin a <= b; b <= a; end\nend\nendmodule"
        )
        clock(sim, load=1)
        assert (sim.peek("a").to_uint(), sim.peek("b").to_uint()) == (1, 0)
        clock(sim, load=0)
        assert (sim.peek("a").to_uint(), sim.peek("b").to_uint()) == (0, 1)

    def test_shift_chain_order_independent(self):
        sim = simulate(
            "module t (input clk, input d, output wire q);\n"
            "reg [2:0] sr;\n"
            "always @(posedge clk) begin\n"
            "    sr[2] <= sr[1];\n"
            "    sr[1] <= sr[0];\n"
            "    sr[0] <= d;\nend\n"
            "assign q = sr[2];\nendmodule"
        )
        sim.step({"clk": 0, "d": 1})
        clock(sim, 3)
        assert sim.peek("q").to_uint() == 1

    def test_last_nba_write_wins(self):
        sim = simulate(
            "module t (input clk, input d, output reg q);\n"
            "always @(posedge clk) begin q <= 1'b0; q <= d; end\nendmodule"
        )
        sim.step({"clk": 0, "d": 1})
        clock(sim)
        assert sim.peek("q").to_uint() == 1

    def test_blocking_in_clocked_block_visible_downstream(self):
        sim = simulate(
            "module t (input clk, input [3:0] d, output reg [3:0] q);\n"
            "reg [3:0] tmp;\n"
            "always @(posedge clk) begin\n"
            "    tmp = d + 1;\n"
            "    q <= tmp << 1;\nend\nendmodule"
        )
        sim.step({"clk": 0, "d": 3})
        clock(sim)
        assert sim.peek("q").to_uint() == ((3 + 1) << 1) & 0xF

    def test_nba_index_evaluated_at_schedule_time(self):
        sim = simulate(
            "module t (input clk, input [1:0] sel, input d, output reg [3:0] q);\n"
            "always @(posedge clk) q[sel] <= d;\nendmodule"
        )
        sim.step({"clk": 0, "sel": 2, "d": 1})
        clock(sim)
        assert sim.peek("q").bit(2).to_uint() == 1


class TestMemories:
    RAM = (
        "module t (input clk, input we, input [1:0] a, input [7:0] d,\n"
        "          output wire [7:0] q);\n"
        "reg [7:0] mem [0:3];\n"
        "always @(posedge clk) if (we) mem[a] <= d;\n"
        "assign q = mem[a];\nendmodule"
    )

    def test_write_then_read(self):
        sim = simulate(self.RAM)
        sim.step({"clk": 0, "we": 1, "a": 1, "d": 0x5A})
        clock(sim)
        sim.step({"we": 0})
        assert sim.peek("q").to_uint() == 0x5A

    def test_uninitialised_word_is_x(self):
        sim = simulate(self.RAM)
        sim.step({"clk": 0, "we": 0, "a": 3, "d": 0})
        assert sim.peek("q").has_x

    def test_async_read_tracks_address(self):
        sim = simulate(self.RAM)
        sim.step({"clk": 0, "we": 1, "a": 0, "d": 10})
        clock(sim)
        clock(sim, a=1, d=20)
        sim.step({"we": 0, "a": 0})
        assert sim.peek("q").to_uint() == 10
        sim.step({"a": 1})
        assert sim.peek("q").to_uint() == 20

    def test_out_of_range_write_ignored(self):
        sim = simulate(
            "module t (input clk, input [2:0] a, input [7:0] d, output [7:0] q);\n"
            "reg [7:0] mem [0:3];\n"
            "always @(posedge clk) mem[a] <= d;\n"
            "assign q = mem[0];\nendmodule"
        )
        sim.step({"clk": 0, "a": 0, "d": 7})
        clock(sim)
        clock(sim, a=5, d=99)  # out of range: no effect anywhere
        assert sim.peek("q").to_uint() == 7

    def test_reset_loop_clears_memory(self):
        sim = simulate(
            "module t (input clk, input rst, input [1:0] a, output [7:0] q);\n"
            "reg [7:0] mem [0:3];\ninteger i;\n"
            "always @(posedge clk)\n"
            "    if (rst) for (i = 0; i < 4; i = i + 1) mem[i] <= 8'd0;\n"
            "assign q = mem[a];\nendmodule"
        )
        sim.step({"clk": 0, "rst": 1, "a": 2})
        clock(sim)
        assert sim.peek("q").to_uint() == 0


class TestInitialBlocks:
    def test_initial_sets_register(self):
        sim = simulate(
            "module t (input clk, output reg [3:0] q);\n"
            "initial q = 4'd9;\n"
            "always @(posedge clk) q <= q + 1;\nendmodule"
        )
        assert sim.peek("q").to_uint() == 9
        clock(sim)
        assert sim.peek("q").to_uint() == 10


class TestDerivedClocks:
    def test_divided_clock_triggers_downstream(self):
        sim = simulate(
            "module t (input clk, output reg q, output reg div);\n"
            "initial begin div = 0; q = 0; end\n"
            "always @(posedge clk) div <= ~div;\n"
            "always @(posedge div) q <= ~q;\nendmodule"
        )
        # div rises on every second clk posedge; q toggles on div rises.
        clock(sim)  # div: 0->1, q toggles
        assert sim.peek("q").to_uint() == 1
        clock(sim)  # div: 1->0
        assert sim.peek("q").to_uint() == 1
        clock(sim)  # div: 0->1, q toggles again
        assert sim.peek("q").to_uint() == 0
