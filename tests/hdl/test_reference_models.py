"""Property tests: the simulator must agree with Python reference models
under randomized stimulus (the strongest end-to-end substrate check)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl.compile import simulate

ALU = """
module alu (
    input wire [7:0] a,
    input wire [7:0] b,
    input wire [2:0] op,
    output reg [7:0] y,
    output wire zero
);
    assign zero = (y == 8'd0);
    always @(*) begin
        case (op)
            3'd0: y = a + b;
            3'd1: y = a - b;
            3'd2: y = a & b;
            3'd3: y = a | b;
            3'd4: y = a ^ b;
            3'd5: y = a << b[2:0];
            3'd6: y = a >> b[2:0];
            default: y = (a < b) ? 8'd1 : 8'd0;
        endcase
    end
endmodule
"""


def alu_reference(a: int, b: int, op: int) -> int:
    if op == 0:
        return (a + b) & 0xFF
    if op == 1:
        return (a - b) & 0xFF
    if op == 2:
        return a & b
    if op == 3:
        return a | b
    if op == 4:
        return a ^ b
    if op == 5:
        return (a << (b & 7)) & 0xFF
    if op == 6:
        return a >> (b & 7)
    return 1 if a < b else 0


@given(
    st.lists(
        st.tuples(
            st.integers(0, 255), st.integers(0, 255), st.integers(0, 7)
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=40, deadline=None)
def test_alu_matches_reference(vectors):
    sim = simulate(ALU)
    for a, b, op in vectors:
        sim.step({"a": a, "b": b, "op": op})
        expected = alu_reference(a, b, op)
        assert sim.peek("y").to_uint() == expected
        assert sim.peek("zero").to_uint() == int(expected == 0)


COUNTER = """
module ctr (
    input wire clk,
    input wire rst,
    input wire en,
    input wire load,
    input wire [7:0] d,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 8'd0;
        else if (load) q <= d;
        else if (en) q <= q + 8'd1;
    end
endmodule
"""


@given(
    st.lists(
        st.tuples(
            st.booleans(), st.booleans(), st.booleans(), st.integers(0, 255)
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=40, deadline=None)
def test_counter_matches_reference(cycles):
    sim = simulate(COUNTER)
    sim.step({"clk": 0, "rst": 1, "en": 0, "load": 0, "d": 0})
    sim.step({"clk": 1})
    sim.step({"clk": 0})
    state = 0
    for rst, en, load, d in cycles:
        sim.step({"rst": int(rst), "en": int(en), "load": int(load), "d": d})
        sim.step({"clk": 1})
        sim.step({"clk": 0})
        if rst:
            state = 0
        elif load:
            state = d
        elif en:
            state = (state + 1) & 0xFF
        assert sim.peek("q").to_uint() == state


FIFO_PROBLEM = "me_fifo4"


@given(st.lists(st.tuples(st.booleans(), st.booleans(), st.integers(0, 255)),
                min_size=1, max_size=40))
@settings(max_examples=25, deadline=None)
def test_fifo_golden_matches_reference(ops):
    """The FIFO golden design must track a Python deque model."""
    from collections import deque

    from repro.evalsets import get_problem

    problem = get_problem(FIFO_PROBLEM)
    sim = simulate(problem.golden, problem.top)
    sim.step({"clk": 0, "reset": 1, "push": 0, "pop": 0, "din": 0})
    sim.step({"clk": 1})
    sim.step({"clk": 0, "reset": 0})
    model: deque = deque()
    for push, pop, din in ops:
        sim.step({"push": int(push), "pop": int(pop), "din": din})
        do_push = push and len(model) < 4
        do_pop = pop and len(model) > 0
        sim.step({"clk": 1})
        sim.step({"clk": 0})
        if do_push:
            model.append(din)
        if do_pop:
            model.popleft()
        assert sim.peek("empty").to_uint() == int(len(model) == 0)
        assert sim.peek("full").to_uint() == int(len(model) == 4)
        if model:
            assert sim.peek("dout").to_uint() == model[0]
