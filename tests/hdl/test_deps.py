"""Dependency-graph and cone-of-influence analysis."""

from repro.hdl.compile import compile_design
from repro.hdl.deps import (
    cone_of_influence,
    dependency_graph,
    fan_in_cone,
    outputs_in_cone,
)

SRC = """
module t (input clk, input a, input b, output wire y, output reg q);
    wire mid;
    assign mid = a & b;
    assign y = mid | a;
    always @(posedge clk) q <= mid;
endmodule
"""


def test_edges_follow_data_flow():
    graph = dependency_graph(compile_design(SRC))
    assert graph.has_edge("a", "mid")
    assert graph.has_edge("mid", "y")
    assert graph.has_edge("mid", "q")
    assert not graph.has_edge("y", "mid")


def test_clock_influences_registers():
    graph = dependency_graph(compile_design(SRC))
    assert graph.has_edge("clk", "q")


def test_cone_of_influence_transitive():
    design = compile_design(SRC)
    cone = cone_of_influence(design, "a")
    assert {"a", "mid", "y", "q"} <= cone


def test_fan_in_cone():
    design = compile_design(SRC)
    fan_in = fan_in_cone(design, "q")
    assert {"q", "mid", "a", "b", "clk"} <= fan_in
    assert "y" not in fan_in


def test_outputs_in_cone():
    design = compile_design(SRC)
    assert outputs_in_cone(design, "b") == {"y", "q"}
    assert outputs_in_cone(design, "mid") == {"y", "q"}


def test_unknown_signal_has_empty_cone():
    design = compile_design(SRC)
    assert cone_of_influence(design, "ghost") == frozenset()


def test_memory_participates():
    design = compile_design(
        "module t (input clk, input [1:0] a, input [7:0] d, output [7:0] q);\n"
        "reg [7:0] mem [0:3];\n"
        "always @(posedge clk) mem[a] <= d;\n"
        "assign q = mem[a];\nendmodule"
    )
    assert "q" in cone_of_influence(design, "d")
    assert outputs_in_cone(design, "mem") == {"q"}
