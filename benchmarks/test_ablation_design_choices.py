"""Design-choice ablations beyond the paper's tables.

DESIGN.md calls out three tunables the paper fixes without sweeping;
this bench quantifies each on a hard-problem subset:

- candidate count c (Step 4): more samples, better best-of;
- Top-K (Step 5 breadth): debugging 2 candidates beats 1;
- checkpoint window L_W (Eq. 6): the debug agent needs history context,
  but a handful of edges suffices.
"""

from dataclasses import replace

from benchmarks.conftest import publish, run_once
from repro.core.config import MAGEConfig
from repro.evalsets import get_problem
from repro.evaluation.harness import evaluate_mage

_HARD_SUBSET = [
    "cb_kmap_mux",
    "cb_seven_seg",
    "ar_sat_add8",
    "fs_seq_det_1011",
    "fs_vending",
    "fs_traffic",
    "fs_arbiter2",
    "sq_counter_bcd",
    "sq_gray_counter",
    "me_fifo4",
    "me_stack4",
    "sq_timer",
]


def _pass_rate(config: MAGEConfig, runs: int = 2) -> float:
    problems = [get_problem(pid) for pid in _HARD_SUBSET]
    result = evaluate_mage(
        config, "verilogeval-v2", runs=runs, problems=problems
    )
    return result.percent


def _run_sweeps():
    base = MAGEConfig.high_temperature()
    sweeps = {"candidates": {}, "top_k": {}, "window": {}}
    for c in (1, 2, 4, 8):
        sweeps["candidates"][c] = _pass_rate(replace(base, candidates=c))
    for k in (1, 2, 4):
        sweeps["top_k"][k] = _pass_rate(replace(base, top_k=k))
    for window in (1, 8, 32):
        sweeps["window"][window] = _pass_rate(
            replace(base, checkpoint_window=window)
        )
    return sweeps


def test_ablation_design_choices(benchmark):
    sweeps = run_once(benchmark, _run_sweeps)

    lines = ["hard-problem subset (12 problems), MAGE high temperature", ""]
    for name, values in sweeps.items():
        lines.append(f"{name} sweep:")
        for key, rate in values.items():
            lines.append(f"    {name}={key:<3} pass@1 = {rate:5.1f}%")
        lines.append("")
    publish("ablation_design_choices", "\n".join(lines))

    c = sweeps["candidates"]
    assert c[4] >= c[1] - 5.0, "c=4 sampling should not lose to c=1"
    assert max(c.values()) == max(c[4], c[8]), "more candidates should win"
    k = sweeps["top_k"]
    assert k[2] >= k[1] - 5.0, "debugging two candidates should not hurt"
