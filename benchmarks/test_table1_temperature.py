"""Table I: MAGE Pass@1 under the Low/High temperature settings.

Paper row (Claude 3.5 Sonnet):

    Config      VerilogEval-Human Pass@1    VerilogEval-V2 Pass@1
    High Temp   94.8                        95.7
    Low Temp    89.1                        93.6

Shape claims asserted: high temperature beats low temperature on both
suites, and both configurations clear 80%.
"""

from benchmarks.conftest import publish, run_once
from repro.core.config import MAGEConfig
from repro.evaluation.harness import default_runs, evaluate_mage

_PAPER = {
    ("high", "verilogeval-human-v1"): 94.8,
    ("high", "verilogeval-v2"): 95.7,
    ("low", "verilogeval-human-v1"): 89.1,
    ("low", "verilogeval-v2"): 93.6,
}


def _run_table1():
    runs = default_runs(2)
    rows = {}
    for label, config, n in [
        ("high", MAGEConfig.high_temperature(), runs),
        ("low", MAGEConfig.low_temperature(), 1),
    ]:
        for suite in ("verilogeval-human-v1", "verilogeval-v2"):
            rows[(label, suite)] = evaluate_mage(config, suite, runs=n)
    return rows


def test_table1_temperature(benchmark):
    rows = run_once(benchmark, _run_table1)

    lines = [
        f"{'Config':10s} {'Suite':24s} {'Pass@1':>8s} {'Paper':>8s}",
        "-" * 54,
    ]
    for (label, suite), result in rows.items():
        lines.append(
            f"{label:10s} {suite:24s} {result.percent:7.1f}% "
            f"{_PAPER[(label, suite)]:7.1f}%"
        )
    publish("table1_temperature", "\n".join(lines))

    for suite in ("verilogeval-human-v1", "verilogeval-v2"):
        high = rows[("high", suite)].percent
        low = rows[("low", suite)].percent
        assert high >= low, f"high temperature must win on {suite}"
        assert low >= 80.0, f"low temperature collapsed on {suite}"
        assert high >= 90.0, f"high temperature too weak on {suite}"
