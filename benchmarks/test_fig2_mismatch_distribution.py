"""Figure 2: normalized mismatch counts of best candidates at low vs
high temperature.

The paper's violin plot shows that, per problem, the best of n=20
high-temperature candidates typically has a *lower* normalized mismatch
count than the single low-temperature candidate.  We regenerate the
underlying per-problem series (problems that pass directly in both
configurations are excluded, as in the caption) and assert the
high-temperature distribution dominates.
"""

import os

from benchmarks.conftest import publish, run_once
from repro.evalsets import get_suite
from repro.evaluation.figures import MismatchDistribution, best_candidate_mismatch


def _run_fig2():
    candidates_high = int(os.environ.get("REPRO_FIG2_SAMPLES", "8"))
    low = MismatchDistribution(label="low temperature (T=0, n=1)")
    high = MismatchDistribution(
        label=f"high temperature (T=0.85, n={candidates_high})"
    )
    for problem in get_suite("verilogeval-v2"):
        m_low = best_candidate_mismatch(problem, 0.0, 0.01, 1, seed=0)
        m_high = best_candidate_mismatch(problem, 0.85, 0.95, candidates_high, seed=0)
        if m_low == 0.0 and m_high == 0.0:
            continue  # passed before Step 4 in both configs (caption filter)
        low.per_problem[problem.id] = m_low
        high.per_problem[problem.id] = m_high
    return low, high


def test_fig2_mismatch_distribution(benchmark):
    low, high = run_once(benchmark, _run_fig2)

    lines = [low.summary(), high.summary(), "", f"{'problem':20s} {'low':>7s} {'high':>7s}"]
    lines.append("-" * 38)
    for pid in sorted(low.per_problem):
        lines.append(
            f"{pid:20s} {low.per_problem[pid]:7.3f} {high.per_problem[pid]:7.3f}"
        )
    publish("fig2_mismatch_distribution", "\n".join(lines))

    import numpy as np

    low_values = np.array(low.values())
    high_values = np.array(high.values())
    assert len(low_values) >= 5, "too few problems entered Step 4"
    assert high_values.mean() < low_values.mean(), (
        "best high-temperature candidates must have lower mean mismatch"
    )
    wins = int((high_values <= low_values + 1e-9).sum())
    assert wins >= int(0.7 * len(low_values)), (
        "high temperature should win on most problems"
    )
