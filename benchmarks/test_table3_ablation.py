"""Table III: multi-agent task-distribution ablation.

Paper (Claude 3.5 Sonnet, low temperature, VerilogEval-V2):

    Vanilla LLM     72.4
    Single-Agent    83.9   (+11.5)
    Multi-Agent     93.6   (+21.2)

Shape claims asserted: vanilla < single-agent < multi-agent, with a
meaningful margin at each step.
"""

from benchmarks.conftest import publish, run_once
from repro.evaluation.ablation import TABLE3_ARMS
from repro.evaluation.harness import evaluate_system

_PAPER = {"vanilla": 72.4, "single-agent": 83.9, "multi-agent": 93.6}


def _run_table3():
    return {
        arm.key: evaluate_system(arm.factory, "verilogeval-v2", runs=1)
        for arm in TABLE3_ARMS
    }


def test_table3_ablation(benchmark):
    results = run_once(benchmark, _run_table3)

    vanilla = results["vanilla"].percent
    lines = [
        f"{'Config':14s} {'Pass@1':>8s} {'Delta':>8s} {'Paper':>8s} {'Paper delta':>12s}",
        "-" * 56,
    ]
    for arm in TABLE3_ARMS:
        ours = results[arm.key].percent
        paper = _PAPER[arm.key]
        lines.append(
            f"{arm.label:14s} {ours:7.1f}% {ours - vanilla:+7.1f}% "
            f"{paper:7.1f}% {paper - 72.4:+11.1f}%"
        )
    publish("table3_ablation", "\n".join(lines))

    assert results["single-agent"].percent > results["vanilla"].percent + 2.0, (
        "single-agent pipeline must improve on vanilla"
    )
    assert results["multi-agent"].percent > results["single-agent"].percent + 5.0, (
        "task distribution must improve on the merged-history agent"
    )
