"""Shared helpers for the experiment benchmarks.

Each benchmark regenerates one table or figure from the paper, prints
the rows (visible with ``pytest -s`` and always written to
``results/``), and asserts the *shape* claims -- who wins, in what
order -- hold.  ``REPRO_EVAL_RUNS`` raises the per-problem run count
toward the paper's n=20 when more fidelity is wanted.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def publish(name: str, text: str) -> None:
    """Print a rendered table/figure and persist it under results/."""
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Benchmark an experiment exactly once (experiments are minutes,
    not microseconds; statistical rerunning is pointless)."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
