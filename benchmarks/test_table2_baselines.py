"""Table II: pass rates of recent LLMs and coding systems vs MAGE.

Reproduces every row of the paper's comparison on our suites.  Shape
claims asserted: MAGE beats every baseline on both suites; the vanilla
Claude > GPT-4o > fine-tuned-small-model ordering holds; MAGE improves
on vanilla Claude by a double-digit margin (paper: +19.8 / +23.3).
"""

from benchmarks.conftest import publish, run_once
from repro.baselines.registry import SYSTEMS
from repro.evaluation.harness import default_runs, evaluate_system


def _run_table2():
    runs = default_runs(2)
    results = {}
    for key, spec in SYSTEMS.items():
        n = runs if key == "mage" else 1
        results[key] = {
            "v1": evaluate_system(
                spec.factory, "verilogeval-human-v1", runs=n
            ),
            "v2": evaluate_system(spec.factory, "verilogeval-v2", runs=n),
        }
    return results


def test_table2_baselines(benchmark):
    results = run_once(benchmark, _run_table2)

    lines = [
        f"{'System':34s} {'Type':13s} {'v1':>7s} {'v1 ref':>7s} {'v2':>7s} {'v2 ref':>7s}",
        "-" * 80,
    ]
    for key, spec in SYSTEMS.items():
        v1 = results[key]["v1"].percent
        v2 = results[key]["v2"].percent
        ref1 = f"{spec.paper_v1:.1f}" if spec.paper_v1 is not None else "  N/A"
        ref2 = f"{spec.paper_v2:.1f}" if spec.paper_v2 is not None else "  N/A"
        lines.append(
            f"{spec.table_label:34s} {spec.system_type:13s} "
            f"{v1:6.1f}% {ref1:>7s} {v2:6.1f}% {ref2:>7s}"
        )
    mage_v1 = results["mage"]["v1"].percent
    mage_v2 = results["mage"]["v2"].percent
    claude_v1 = results["vanilla-claude"]["v1"].percent
    claude_v2 = results["vanilla-claude"]["v2"].percent
    lines.append("-" * 80)
    lines.append(
        f"{'Improvement over vanilla Claude':34s} {'':13s} "
        f"{mage_v1 - claude_v1:+6.1f}% {'+19.8':>7s} "
        f"{mage_v2 - claude_v2:+6.1f}% {'+23.3':>7s}"
    )
    publish("table2_baselines", "\n".join(lines))

    for key in SYSTEMS:
        if key == "mage":
            continue
        assert mage_v1 >= results[key]["v1"].percent, f"MAGE must beat {key} on v1"
        assert mage_v2 >= results[key]["v2"].percent, f"MAGE must beat {key} on v2"
    assert claude_v1 > results["vanilla-gpt-4o"]["v1"].percent
    assert claude_v1 > results["vanilla-itertl"]["v1"].percent
    assert mage_v1 - claude_v1 >= 10.0
    assert mage_v2 - claude_v2 >= 10.0
