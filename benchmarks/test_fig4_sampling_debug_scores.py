"""Figure 4: score improvement from sampling and from debugging.

(a) Score distribution of the initial (unsampled) candidate vs the best
    sampled candidate, over problems that enter Step 4 -- the paper
    shows unsampled scores spread over [0, 1] while sampled-best scores
    concentrate near 1.
(b) Mean candidate score per debug round -- the paper reports a rise
    from 0.669 to 0.890 with a plateau (not full convergence).
"""

import numpy as np

from benchmarks.conftest import publish, run_once
from repro.core.config import MAGEConfig
from repro.evalsets import get_suite
from repro.evaluation.figures import collect_score_series


def _run_fig4():
    problems = get_suite("verilogeval-v2")
    return collect_score_series(problems, MAGEConfig.high_temperature(), seed=0)


def _dist_line(label, values):
    arr = np.array(values) if values else np.array([0.0])
    return (
        f"{label:28s} mean={arr.mean():.3f} median={np.median(arr):.3f} "
        f"q1={np.percentile(arr, 25):.3f} q3={np.percentile(arr, 75):.3f} "
        f"n={len(arr)}"
    )


def test_fig4_sampling_debug_scores(benchmark):
    series = run_once(benchmark, _run_fig4)

    round_means = series.round_means()
    lines = [
        "(a) Score distribution, problems entering Step 4:",
        _dist_line("initial (no sampling)", series.initial_scores),
        _dist_line("best sampled candidate", series.sampled_best_scores),
        "",
        "(b) Mean score per debug round (paper: 0.669 -> 0.890):",
    ]
    for index, mean in enumerate(round_means):
        lines.append(f"    round {index}: {mean:.3f}")
    publish("fig4_sampling_debug_scores", "\n".join(lines))

    assert len(series.initial_scores) >= 5, "too few problems entered Step 4"
    initial = np.array(series.initial_scores)
    sampled = np.array(series.sampled_best_scores)
    assert sampled.mean() > initial.mean(), "sampling must raise the best score"
    assert np.median(sampled) >= 0.9, "sampled-best scores must concentrate near 1"

    if len(round_means) >= 2:
        assert round_means[-1] > round_means[0], "debugging must raise mean score"
        # Eq. 4 rollback forbids regression in the per-candidate max, so
        # round means are non-decreasing.
        for earlier, later in zip(round_means, round_means[1:]):
            assert later >= earlier - 1e-9
