"""Figure 3: debugging with vs without Verilog-state checkpoints.

The paper's case study (Prob093-ece241-2014-q3) shows a missing-term
bug in a K-map-derived mux input: with only an aggregate log the debug
agent patches the wrong line and fails; with the state checkpoint it
pinpoints the missing ``(c & d)`` term and fixes it.

We regenerate both feedback artifacts for the same style of bug on our
prob093-equivalent (``cb_kmap_mux``), then quantify the mechanism over
a population of injected missing-term faults: the checkpoint-fed agent
must fix strictly more of them than the log-fed agent.
"""

import numpy as np

from benchmarks.conftest import publish, run_once
from repro.agents.debug_agent import DebugAgent
from repro.core.task import DesignTask
from repro.evalsets import get_problem, get_suite, golden_testbench
from repro.hdl.parser import parse_module
from repro.llm import SamplingParams, SimLLM
from repro.llm.mutation import collect_sites, sample_faults
from repro.tb.checkpoint import render_checkpoint_feedback, render_logonly_feedback
from repro.tb.runner import run_testbench

_DEBUG = SamplingParams(temperature=0.4, top_p=0.95, n=1, seed=0)
_ROUNDS = 3


def _harmful_fault(problem, seed):
    """One injected fault that observably breaks the golden design."""
    module = parse_module(problem.golden, problem.top)
    sites = collect_sites(module)
    tb = golden_testbench(problem)
    rng = np.random.default_rng(seed)
    llm = SimLLM("claude-3.5-sonnet")
    for _ in range(12):
        faults = sample_faults(module, 1, rng, sites)
        if not faults:
            continue
        source = llm.inject_candidate(problem, faults)
        report = run_testbench(source, tb, problem.top)
        if report.error is None and 0 < report.score < 1:
            return faults, source, report
    return None, None, None


def _run_fig3():
    # Part 1: the anecdote -- regenerate both feedback artifacts for the
    # paper's exact bug shape (missing (c & d) term on cb_kmap_mux).
    problem = get_problem("cb_kmap_mux")
    tb = golden_testbench(problem)
    buggy = problem.golden.replace(
        "mux_in[0] = (~c & d) | (c & ~d) | (c & d);",
        "mux_in[0] = (~c & d) | (c & ~d);",
    )
    assert buggy != problem.golden
    report = run_testbench(buggy, tb, problem.top)
    anecdote = {
        "log_without_checkpoint": render_logonly_feedback(report),
        "log_with_checkpoint": render_checkpoint_feedback(report, window=4),
        "mismatches": report.mismatches,
    }

    # Part 2: the population experiment.
    outcomes = {"checkpoint": 0, "logonly": 0, "total": 0}
    pool = [p for p in get_suite("verilogeval-v2") if p.difficulty <= 0.7]
    for index, problem in enumerate(pool):
        faults, source, report = _harmful_fault(problem, seed=1000 + index)
        if faults is None:
            continue
        outcomes["total"] += 1
        llm = SimLLM("claude-3.5-sonnet")
        source_ck = llm.inject_candidate(problem, faults)
        if _debug_with(llm, problem, source_ck, True, index):
            outcomes["checkpoint"] += 1
        llm2 = SimLLM("claude-3.5-sonnet")
        source_log = llm2.inject_candidate(problem, faults)
        if _debug_with(llm2, problem, source_log, False, index):
            outcomes["logonly"] += 1
    return anecdote, outcomes


def _debug_with(llm, problem, source, use_checkpoints, seed):
    task = DesignTask.from_problem(problem)
    tb = golden_testbench(problem)
    report = run_testbench(source, tb, problem.top)
    agent = DebugAgent(llm)
    code = source
    for round_index in range(_ROUNDS):
        if report.passed:
            return True
        trial = agent.debug(
            task,
            code,
            report,
            SamplingParams(0.4, 0.95, 1, seed=seed * 77 + round_index),
            use_checkpoints=use_checkpoints,
        )
        trial_report = run_testbench(trial, tb, problem.top)
        if trial_report.score > report.score:
            code, report = trial, trial_report
    return report.passed


def test_fig3_checkpoint_case_study(benchmark):
    anecdote, outcomes = run_once(benchmark, _run_fig3)

    lines = [
        "=== Case study: missing (c & d) term on cb_kmap_mux ===",
        "",
        "--- Log WITHOUT checkpoint (conventional golden testbench) ---",
        anecdote["log_without_checkpoint"],
        "",
        "--- Log WITH state checkpoint (MAGE) ---",
        anecdote["log_with_checkpoint"],
        "",
        "=== Population experiment (injected faults, 3 debug rounds) ===",
        f"faults injected:            {outcomes['total']}",
        f"fixed with checkpoints:     {outcomes['checkpoint']}",
        f"fixed with log-only:        {outcomes['logonly']}",
    ]
    publish("fig3_checkpoint_case_study", "\n".join(lines))

    assert anecdote["mismatches"] > 0
    assert "Got mux_in=" in anecdote["log_with_checkpoint"]
    assert "Inputs:" in anecdote["log_with_checkpoint"]
    assert "Got" not in anecdote["log_without_checkpoint"]
    assert outcomes["total"] >= 15
    assert outcomes["checkpoint"] > outcomes["logonly"], (
        "checkpoint feedback must fix more injected faults than log-only"
    )
